//! Concurrent stress tests for the PNB-BST.
//!
//! These tests check linearizability-derived *invariants* under real
//! concurrency (full linearizability checking of long histories is
//! infeasible; these invariants are consequences any linearizable
//! implementation must satisfy):
//!
//! * **Disjoint-stripe exactness** — threads operating on disjoint key
//!   stripes must each see exactly their own sequential semantics.
//! * **Prefix visibility** — if a single writer inserts 0,1,2,… in
//!   order, every concurrent scan must observe a *prefix* (per-writer
//!   prefixes in the multi-writer version).
//! * **Sliding-window cardinality** — a writer that always inserts the
//!   new key *before* deleting the old one keeps its stripe at C or C+1
//!   keys in every linearizable snapshot.
//! * **Scan termination under churn** (wait-freedom smoke test).
//!
//! Iteration counts scale with the `PNBBST_TEST_ITERS` environment
//! variable (a multiplier, default 1): the defaults finish in seconds
//! for CI, while e.g. `PNBBST_TEST_ITERS=50` is the "deep" overnight
//! setting (see README.md).

use pnb_bst::PnbBst;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().max(2))
        .unwrap_or(2)
        .min(8)
}

/// `n` scaled by the `PNBBST_TEST_ITERS` multiplier (default 1).
fn scaled(n: u64) -> u64 {
    let scale = std::env::var("PNBBST_TEST_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    n.saturating_mul(scale)
}

#[test]
fn disjoint_stripes_are_exact() {
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    let nthreads = threads() as u64;
    let per = scaled(2_000);
    let handles: Vec<_> = (0..nthreads)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let base = t * 1_000_000;
                // Insert all, delete every other, re-check.
                for i in 0..per {
                    assert!(tree.insert(base + i, i));
                }
                for i in (0..per).step_by(2) {
                    assert_eq!(tree.remove(&(base + i)), Some(i));
                }
                for i in 0..per {
                    let expect = if i % 2 == 0 { None } else { Some(i) };
                    assert_eq!(tree.get(&(base + i)), expect);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(tree.check_invariants() as u64, nthreads * per / 2);
}

#[test]
fn contended_single_key_has_one_winner() {
    // All threads fight over the same key: exactly one insert and one
    // delete may win per round.
    let tree = Arc::new(PnbBst::<u64, usize>::new());
    let nthreads = threads();
    for round in 0..scaled(200) {
        let ins_wins: usize = {
            let handles: Vec<_> = (0..nthreads)
                .map(|t| {
                    let tree = Arc::clone(&tree);
                    thread::spawn(move || tree.insert(round, t) as usize)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        };
        assert_eq!(ins_wins, 1, "exactly one insert wins round {round}");
        let del_wins: usize = {
            let handles: Vec<_> = (0..nthreads)
                .map(|_| {
                    let tree = Arc::clone(&tree);
                    thread::spawn(move || tree.delete(&round) as usize)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        };
        assert_eq!(del_wins, 1, "exactly one delete wins round {round}");
    }
    assert_eq!(tree.check_invariants(), 0);
}

#[test]
fn scans_observe_prefixes_of_a_sequential_writer() {
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    let done = Arc::new(AtomicBool::new(false));
    let n = scaled(3_000);

    let writer = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            for k in 0..n {
                assert!(tree.insert(k, k));
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let scanners: Vec<_> = (0..threads() - 1)
        .map(|_| {
            let tree = Arc::clone(&tree);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut max_seen = 0usize;
                let mut scans = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let snap = tree.range_scan(&0, &n);
                    // Prefix property: keys must be exactly 0..len.
                    for (i, (k, v)) in snap.iter().enumerate() {
                        assert_eq!(*k, i as u64, "scan must see a prefix");
                        assert_eq!(v, k);
                    }
                    assert!(
                        snap.len() >= max_seen,
                        "later scans may not lose elements ({} < {max_seen})",
                        snap.len()
                    );
                    max_seen = snap.len();
                    scans += 1;
                }
                scans
            })
        })
        .collect();

    writer.join().unwrap();
    let total_scans: usize = scanners.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_scans > 0);
    assert_eq!(tree.check_invariants() as u64, n);
}

#[test]
fn sliding_window_cardinality_invariant() {
    // Each writer keeps a window [lo, lo+C) alive in its stripe by
    // inserting lo+C before deleting lo. Any linearizable snapshot sees
    // between C and C+1 keys in each stripe.
    const C: usize = 16;
    let tree = Arc::new(PnbBst::<u64, ()>::new());
    let done = Arc::new(AtomicBool::new(false));
    let nwriters = (threads() - 1).max(1) as u64;
    let stripe = 1_000_000u64;

    // Prefill each stripe with its initial window.
    for w in 0..nwriters {
        for i in 0..C as u64 {
            tree.insert(w * stripe + i, ());
        }
    }

    let writers: Vec<_> = (0..nwriters)
        .map(|w| {
            let tree = Arc::clone(&tree);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let base = w * stripe;
                let mut lo = 0u64;
                while !done.load(Ordering::SeqCst) {
                    assert!(tree.insert(base + lo + C as u64, ()));
                    assert!(tree.delete(&(base + lo)));
                    lo += 1;
                }
            })
        })
        .collect();

    let scanner = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut checked = 0usize;
            for _ in 0..scaled(300) {
                for w in 0..nwriters {
                    let base = w * stripe;
                    let count = tree.scan_count(&base, &(base + stripe - 1));
                    assert!(
                        count == C || count == C + 1,
                        "stripe {w} had {count} keys (expected {C} or {})",
                        C + 1
                    );
                    checked += 1;
                }
            }
            done.store(true, Ordering::SeqCst);
            checked
        })
    };

    let checked = scanner.join().unwrap();
    assert!(checked > 0);
    for h in writers {
        h.join().unwrap();
    }
    // Quiescent: every stripe has exactly C keys.
    for w in 0..nwriters {
        let base = w * stripe;
        assert_eq!(tree.scan_count(&base, &(base + stripe - 1)), C);
    }
    tree.check_invariants();
}

#[test]
fn deletions_leave_suffixes_for_scans() {
    // A writer deletes 0,1,2,... in order; scans must see suffixes.
    let n = scaled(2_000);
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    for k in 0..n {
        tree.insert(k, k);
    }
    let done = Arc::new(AtomicBool::new(false));
    let deleter = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            for k in 0..n {
                assert!(tree.delete(&k));
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let scanner = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut min_front = 0u64;
            while !done.load(Ordering::SeqCst) {
                let snap = tree.range_scan(&0, &n);
                if let Some((first, _)) = snap.first() {
                    // Suffix property: contiguous from `first` to n-1.
                    for (i, (k, _)) in snap.iter().enumerate() {
                        assert_eq!(*k, first + i as u64, "scan must see a suffix");
                    }
                    assert_eq!(*snap.last().unwrap(), (n - 1, n - 1));
                    assert!(*first >= min_front, "deleted keys may not reappear");
                    min_front = *first;
                }
            }
        })
    };
    deleter.join().unwrap();
    scanner.join().unwrap();
    assert_eq!(tree.check_invariants(), 0);
}

#[test]
fn mixed_churn_with_scans_and_snapshots() {
    // General smoke test: updates, finds, scans and snapshots all at
    // once, then verify against per-stripe recomputation at quiescence.
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    let nthreads = threads() as u64;
    let ops = scaled(4_000);
    let handles: Vec<_> = (0..nthreads)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let base = t * 100_000;
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for i in 0..ops {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = base + (x >> 40) % 512;
                    match x % 10 {
                        0..=3 => {
                            tree.insert(k, i);
                        }
                        4..=6 => {
                            tree.delete(&k);
                        }
                        7 => {
                            tree.get(&k);
                        }
                        8 => {
                            let lo = base + (x >> 33) % 512;
                            let _ = tree.scan_count(&lo, &(lo + 64));
                        }
                        _ => {
                            let snap = tree.snapshot();
                            let _ = snap.len();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = tree.check_invariants();
    assert_eq!(total, tree.len());
    assert_eq!(tree.to_vec().len(), total);
}

#[test]
fn scan_completes_under_sustained_update_load() {
    // Wait-freedom smoke test: scans must finish even while every other
    // thread updates as fast as it can.
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    for k in 0..4_096 {
        tree.insert(k * 2, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = (0..threads() - 1)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut x = (t as u64) | 1;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let k = (x >> 33) % 8_192;
                    if k % 2 == 1 {
                        tree.insert(k, k);
                        tree.delete(&k);
                    }
                }
            })
        })
        .collect();

    for _ in 0..scaled(50) {
        let scan = tree.range_scan(&0, &8_192);
        // The even keys are permanent; every scan must contain them all.
        let evens = scan.iter().filter(|(k, _)| k % 2 == 0).count();
        assert_eq!(evens, 4_096);
    }
    stop.store(true, Ordering::Relaxed);
    for h in updaters {
        h.join().unwrap();
    }
    tree.check_invariants();
}

/// One long-lived pinned `Handle` drives a mixed read/upsert loop while
/// every other thread churns the same key space through its own
/// session. Checks that (a) the handle survives arbitrarily many
/// operations with periodic `refresh`, (b) its lazy range iterations
/// keep observing the permanent keys, and (c) upserts through the
/// handle are atomic (a displaced value is always one somebody wrote).
#[test]
fn long_lived_handle_under_churn() {
    const SPACE: u64 = 4_096;
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    // Even keys are permanent; only odd keys churn.
    for k in (0..SPACE).step_by(2) {
        tree.insert(k, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = (0..(threads() - 1).max(1))
        .map(|t| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut session = tree.pin();
                let mut x = (t as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut n = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let k = ((x >> 33) % SPACE) | 1; // odd keys only
                    if x & 2 == 0 {
                        session.upsert(k, x);
                    } else {
                        session.delete(&k);
                    }
                    n = n.wrapping_add(1);
                    if n.is_multiple_of(64) {
                        session.refresh();
                    }
                }
            })
        })
        .collect();

    // The long-lived handle: one pin, many thousands of operations.
    let mut handle = tree.pin();
    for round in 0..scaled(300) {
        // Point reads: permanent keys are always visible.
        let k = (round * 2) % SPACE;
        assert_eq!(handle.get(&k), Some(k), "permanent key {k} vanished");
        // Lazy range over a window: all evens in the window, in order.
        let lo = (round * 97) % (SPACE - 256);
        let lo = lo - lo % 2;
        let mut prev = None;
        let mut evens = 0usize;
        for (k, _) in handle.range(lo..lo + 256) {
            assert!(prev.is_none_or(|p| p < k), "range out of order");
            prev = Some(k);
            if k % 2 == 0 {
                evens += 1;
            }
        }
        assert_eq!(evens, 128, "window [{lo}, {lo}+256) lost an even key");
        // Atomic upsert through the handle on a contended odd key.
        let contended = ((round * 31) % SPACE) | 1;
        let _ = handle.upsert(contended, u64::MAX - round);
        handle.refresh();
    }
    stop.store(true, Ordering::Relaxed);
    for h in updaters {
        h.join().unwrap();
    }
    let evens = tree.pin().iter().filter(|(k, _)| k % 2 == 0).count();
    assert_eq!(evens, (SPACE / 2) as usize);
    tree.check_invariants();
}
