//! Tests of the persistence machinery itself: phases, version-`i` trees
//! (`T_i`), and the shapes of Figure 1.
//!
//! The paper defines `T_i` as the tree reachable through *version-i
//! children* (follow a child pointer, then `prev` pointers until the
//! first node with `seq ≤ i`) and proves (Lemma 30) that a child CAS
//! with sequence number `s` leaves every `T_i` with `i < s` untouched.
//! Snapshots expose `T_i` directly, so we can check those claims
//! observationally.

use pnbbst_repro::PnbBst;

#[test]
fn phase_counter_advances_only_on_scans_and_snapshots() {
    let t: PnbBst<u32, u32> = PnbBst::new();
    assert_eq!(t.phase(), 0);
    t.insert(1, 1);
    t.insert(2, 2);
    t.delete(&1);
    t.get(&2);
    assert_eq!(t.phase(), 0, "updates and finds never advance the phase");
    let _ = t.range_scan(&0, &10);
    assert_eq!(t.phase(), 1);
    let s = t.snapshot();
    assert_eq!(t.phase(), 2);
    drop(s);
    assert_eq!(t.phase(), 2, "dropping a snapshot does not rewind");
}

#[test]
fn older_versions_are_immune_to_later_updates() {
    // Lemma 30.1a, observationally: take a snapshot of phase i, then
    // mutate heavily; the snapshot's view never changes.
    let t: PnbBst<u32, u32> = PnbBst::new();
    for k in 0..50 {
        t.insert(k, k);
    }
    let snap = t.snapshot();
    let before = snap.to_vec();

    // Heavy churn afterwards, including keys the snapshot can see.
    for k in 0..50 {
        if k % 2 == 0 {
            t.delete(&k);
        }
    }
    for k in 100..200 {
        t.insert(k, k);
    }
    for k in (0..50).step_by(4) {
        t.insert(k, k + 1000); // reinsert with different values
    }

    assert_eq!(
        snap.to_vec(),
        before,
        "T_i must be frozen for i < later seqs"
    );
    // And repeated reads are stable (idempotent helping).
    assert_eq!(snap.to_vec(), before);
    assert_eq!(snap.len(), 50);
}

#[test]
fn chain_of_versions_replays_history() {
    // Build a little history and verify each version independently —
    // persistence in the original sense of the word.
    let t: PnbBst<u32, &'static str> = PnbBst::new();
    let mut versions = Vec::new();
    let mut expected: Vec<Vec<u32>> = Vec::new();
    let mut live: Vec<u32> = Vec::new();

    let script: &[(&str, u32)] = &[
        ("ins", 10),
        ("ins", 20),
        ("ins", 5),
        ("del", 10),
        ("ins", 15),
        ("del", 5),
        ("ins", 10),
        ("del", 20),
    ];
    for (what, k) in script {
        match *what {
            "ins" => {
                assert!(t.insert(*k, "x"));
                live.push(*k);
            }
            _ => {
                assert!(t.delete(k));
                live.retain(|x| x != k);
            }
        }
        live.sort_unstable();
        versions.push(t.snapshot());
        expected.push(live.clone());
    }
    for (i, (snap, expect)) in versions.iter().zip(&expected).enumerate() {
        let got: Vec<u32> = snap.to_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(&got, expect, "version after step {i}");
    }
    // Versions have strictly increasing sequence numbers.
    for w in versions.windows(2) {
        assert!(w[0].seq() < w[1].seq());
    }
}

#[test]
fn figure1_insert_shape() {
    // Figure 1 (left): Insert(C) into {B, D} replaces the leaf B… — in
    // leaf-oriented terms: the leaf the search lands on is replaced by an
    // internal node whose children are the old leaf's key and the new
    // key, with the smaller on the left and the internal node keyed by
    // the larger.
    let t: PnbBst<char, u32> = PnbBst::new();
    assert!(t.insert('D', 4));
    assert!(t.insert('B', 2));
    // Insert C: lands on the leaf B (C < D), so the new internal node
    // must have key C→max(B,C)=C with B left, C right.
    assert!(t.insert('C', 3));
    let all: Vec<char> = t.to_vec().into_iter().map(|(k, _)| k).collect();
    assert_eq!(all, vec!['B', 'C', 'D']);
    assert_eq!(t.check_invariants(), 3); // checks BST + fullness + placement

    // Searches route correctly through the new shape.
    for (k, v) in [('B', 2), ('C', 3), ('D', 4)] {
        assert_eq!(t.get(&k), Some(v));
    }
}

#[test]
fn figure1_delete_copies_sibling() {
    // Figure 1 (right): Delete(C) removes the leaf C, its parent, AND
    // replaces the sibling subtree γ with a *copy* (prev = the removed
    // parent). Observationally: after a scan pins phase i, deleting a
    // key whose sibling is an internal subtree must leave T_i readable
    // (the copy keeps the old version reachable through prev).
    let t: PnbBst<u32, u32> = PnbBst::new();
    for k in [50, 25, 75, 60, 90] {
        t.insert(k, k);
    }
    let snap = t.snapshot(); // pins the version before the delete

    // Delete 25: its sibling in the tree is an internal subtree
    // (containing 50..90 side structure depends on shape, but the
    // sibling of the leaf 25's parent region is internal).
    assert!(t.delete(&25));
    assert!(t.delete(&60));
    // Old version intact:
    let old: Vec<u32> = snap.to_vec().into_iter().map(|(k, _)| k).collect();
    assert_eq!(old, vec![25, 50, 60, 75, 90]);
    // New version correct:
    let new: Vec<u32> = t.to_vec().into_iter().map(|(k, _)| k).collect();
    assert_eq!(new, vec![50, 75, 90]);
    assert_eq!(t.check_invariants(), 3);
}

#[test]
fn snapshot_point_reads_match_full_scans() {
    // Snapshot::get is a degenerate ScanHelper; both read T_seq, so they
    // must agree on every key.
    let t: PnbBst<u32, u32> = PnbBst::new();
    for k in (0..100).step_by(3) {
        t.insert(k, k * 7);
    }
    let snap = t.snapshot();
    for k in (0..100).step_by(5) {
        t.delete(&k); // churn after the snapshot
    }
    let full: std::collections::BTreeMap<u32, u32> = snap.to_vec().into_iter().collect();
    for k in 0..100 {
        assert_eq!(snap.get(&k), full.get(&k).copied(), "key {k}");
        assert_eq!(snap.contains(&k), full.contains_key(&k), "key {k}");
    }
}

#[test]
fn interleaved_snapshots_and_scans_across_many_phases() {
    let t: PnbBst<u64, u64> = PnbBst::new();
    let mut model = std::collections::BTreeSet::new();
    let mut x = 77u64;
    for round in 0..40 {
        // A few updates per phase.
        for _ in 0..10 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 33) % 128;
            if x.is_multiple_of(2) {
                t.insert(k, k);
                model.insert(k);
            } else {
                t.delete(&k);
                model.remove(&k);
            }
        }
        // Every scan agrees with the model (single-threaded, so the
        // linearization order is the program order).
        let got: Vec<u64> = t.range_scan(&0, &127).into_iter().map(|(k, _)| k).collect();
        let expect: Vec<u64> = model.iter().copied().collect();
        assert_eq!(got, expect, "round {round}");
        assert_eq!(t.phase(), round + 1, "one phase per scan");
    }
}
