//! Durable-checkpoint battery: roundtrip fidelity against a `BTreeMap`
//! oracle, and a corruption gauntlet for the on-disk format.
//!
//! Two layers:
//!
//! * **Proptest oracle** — random point-op sequences drive a
//!   `ShardedPnbBst` at 1, 2 and 8 shards alongside a `BTreeMap`;
//!   after a `checkpoint` → `restore` cycle each restored map must
//!   reproduce the model exactly (full contents, merged range queries,
//!   point lookups), and must remain a fully functional map (updates
//!   and a second checkpoint still work).
//! * **Corruption gauntlet** — every way a checkpoint directory can be
//!   torn (bit-flipped segment byte, truncated tail, missing COMMIT
//!   marker, manifest/shard-count mismatch) must surface as a *typed*
//!   `CheckpointError`, and — the crash-recovery contract — must never
//!   stop an older intact generation from loading (DESIGN §9).
//!
//! The gauntlet manipulates files through the public `pnb_bst::persist`
//! API plus raw `std::fs`, exactly the way a crash or bitrot would.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use pnb_bst::persist::{self, Manifest, SegmentMeta};
use pnbbst_repro::{CheckpointError, PnbBst, ShardedPnbBst};

/// Fresh scratch dir under the system temp root, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnb_ckpt_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[derive(Clone, Debug)]
enum Action {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
}

/// Spread keys across partitioner blocks (default block = 4096 keys)
/// so every shard sees traffic at 2 and 8 shards.
const KEY_STRIDE: u64 = 5_000;

fn action_strategy(key_space: u64) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Action::Insert(k * KEY_STRIDE, v)),
        2 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Action::Upsert(k * KEY_STRIDE, v)),
        2 => (0..key_space).prop_map(|k| Action::Remove(k * KEY_STRIDE)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpoint_restore_matches_btreemap_at_1_2_and_8_shards(
        actions in prop::collection::vec(action_strategy(64), 1..200)
    ) {
        let maps: Vec<ShardedPnbBst<u64, u64>> =
            [1usize, 2, 8].into_iter().map(ShardedPnbBst::new).collect();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        {
            let mut sessions: Vec<_> = maps.iter().map(|m| m.pin()).collect();
            for a in &actions {
                match *a {
                    Action::Insert(k, v) => {
                        let want = !model.contains_key(&k);
                        if want {
                            model.insert(k, v);
                        }
                        for s in &mut sessions {
                            prop_assert_eq!(s.insert(k, v), want);
                        }
                    }
                    Action::Upsert(k, v) => {
                        let prev = model.insert(k, v);
                        for s in &mut sessions {
                            prop_assert_eq!(s.upsert(k, v), prev);
                        }
                    }
                    Action::Remove(k) => {
                        let want = model.remove(&k).is_some();
                        for s in &mut sessions {
                            prop_assert_eq!(s.delete(&k), want);
                        }
                    }
                }
            }
        }

        for (i, map) in maps.iter().enumerate() {
            let dir = scratch(&format!("prop_{i}"));
            let report = map.checkpoint(&dir).expect("checkpoint");
            prop_assert_eq!(report.entries, model.len() as u64);

            let restored: ShardedPnbBst<u64, u64> =
                ShardedPnbBst::restore(&dir).expect("restore");
            restored.check_invariants();

            // Full contents, via the merged cross-shard snapshot.
            let got: Vec<(u64, u64)> = restored.snapshot().to_vec();
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&got, &want);

            let s = restored.pin();
            // Point lookups agree with the model (hit and miss).
            for k in (0..64u64).map(|k| k * KEY_STRIDE) {
                prop_assert_eq!(s.get(&k), model.get(&k).copied());
            }
            // Merged range query over a middle window.
            let (lo, hi) = (10 * KEY_STRIDE, 40 * KEY_STRIDE);
            let got_range: Vec<(u64, u64)> = s.range(lo..=hi).collect();
            let want_range: Vec<(u64, u64)> =
                model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&got_range, &want_range);

            // The restored map is live: mutate it and checkpoint again.
            s.upsert(7, 7);
            drop(s);
            let again = restored.checkpoint(&dir).expect("second checkpoint");
            prop_assert_eq!(again.generation, report.generation + 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Build a committed generation with `n` entries and return its dir.
fn seeded(dir: &Path, n: u64) -> ShardedPnbBst<u64, u64> {
    let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(4);
    {
        let s = map.pin();
        for k in 0..n {
            assert!(s.insert(k * KEY_STRIDE, k));
        }
    }
    map.checkpoint(dir).expect("seed checkpoint");
    map
}

/// Newest generation directory under `dir`.
fn newest_gen(dir: &Path) -> PathBuf {
    persist::generations(dir).expect("list generations")[0]
        .1
        .clone()
}

#[test]
fn bit_flipped_segment_is_typed_and_prior_generation_still_loads() {
    let dir = scratch("bitflip");
    let map = seeded(&dir, 50);
    // Second generation, then flip one payload byte in one segment.
    {
        let s = map.pin();
        assert!(s.insert(999 * KEY_STRIDE, 999));
    }
    map.checkpoint(&dir).expect("second checkpoint");
    let gen2 = newest_gen(&dir);
    let seg = persist::segment_path(&gen2, 0);
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&seg, &bytes).expect("rewrite segment");

    // Direct read of the damaged segment: typed CRC error.
    match persist::read_segment(&seg) {
        Err(CheckpointError::CrcMismatch { .. }) => {}
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
    // Restore falls back to generation 1 — 50 entries, not 51.
    let restored: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&dir).expect("fallback");
    assert_eq!(restored.snapshot().len(), 50);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segment_is_typed_and_prior_generation_still_loads() {
    let dir = scratch("truncate");
    let map = seeded(&dir, 50);
    {
        let s = map.pin();
        assert!(s.insert(999 * KEY_STRIDE, 999));
    }
    map.checkpoint(&dir).expect("second checkpoint");
    let gen2 = newest_gen(&dir);
    let seg = persist::segment_path(&gen2, 1);
    let bytes = std::fs::read(&seg).expect("read segment");
    std::fs::write(&seg, &bytes[..bytes.len() - 5]).expect("truncate segment");

    match persist::read_segment(&seg) {
        Err(CheckpointError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    let restored: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&dir).expect("fallback");
    assert_eq!(restored.snapshot().len(), 50);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_commit_marker_skips_the_generation() {
    let dir = scratch("nocommit");
    let map = seeded(&dir, 50);
    {
        let s = map.pin();
        assert!(s.insert(999 * KEY_STRIDE, 999));
    }
    map.checkpoint(&dir).expect("second checkpoint");
    // Simulate a crash between manifest write and commit write.
    std::fs::remove_file(newest_gen(&dir).join("COMMIT")).expect("drop COMMIT");

    let restored: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&dir).expect("fallback");
    assert_eq!(
        restored.snapshot().len(),
        50,
        "uncommitted generation must be invisible"
    );

    // With no committed generation at all, the error is typed.
    let lone = scratch("nocommit_lone");
    let solo = seeded(&lone, 10);
    drop(solo);
    std::fs::remove_file(newest_gen(&lone).join("COMMIT")).expect("drop COMMIT");
    match ShardedPnbBst::<u64, u64>::restore(&lone) {
        Err(CheckpointError::MissingCommitMarker { .. }) => {}
        other => panic!("expected MissingCommitMarker, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&lone);
}

#[test]
fn wrong_shard_count_in_manifest_is_typed() {
    let dir = scratch("shardcount");
    let map = seeded(&dir, 50);
    {
        let s = map.pin();
        assert!(s.insert(999 * KEY_STRIDE, 999));
    }
    map.checkpoint(&dir).expect("second checkpoint");
    let gen2 = newest_gen(&dir);

    // Rewrite the manifest claiming 3 shards (files on disk say 4) and
    // re-commit so only the shard count is wrong.
    let (mut m, _) = persist::read_manifest(&gen2).expect("read manifest");
    m.shard_count = 3;
    m.segments.pop();
    let crc = persist::write_manifest(&gen2, &m).expect("rewrite manifest");
    persist::write_commit(&gen2, crc).expect("re-commit");

    match persist::load_generation(&gen2) {
        Err(CheckpointError::ShardCountMismatch { .. }) => {}
        other => panic!("expected ShardCountMismatch, got {:?}", other.map(|_| ())),
    }
    // Fallback to generation 1 still works end to end.
    let restored: ShardedPnbBst<u64, u64> = ShardedPnbBst::restore(&dir).expect("fallback");
    assert_eq!(restored.snapshot().len(), 50);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unsharded_tree_checkpoint_roundtrips_through_the_facade() {
    let dir = scratch("core_tree");
    let tree: PnbBst<u64, u64> = PnbBst::new();
    for k in 0..100u64 {
        assert!(tree.insert(k * 3, k));
    }
    let report = tree.checkpoint(&dir).expect("checkpoint");
    assert_eq!(report.entries, 100);
    let back: PnbBst<u64, u64> = PnbBst::restore(&dir).expect("restore");
    assert_eq!(
        back.snapshot().to_vec(),
        (0..100u64).map(|k| (k * 3, k)).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hand_built_generation_loads_through_the_public_persist_api() {
    // The format is public: a generation written with the low-level
    // helpers must load through the high-level restore path.
    let dir = scratch("handmade");
    let (generation, gen_dir) = persist::begin_generation(&dir).expect("begin");
    assert_eq!(generation, 1);
    let entries: Vec<(u64, u64)> = (0..10u64).map(|k| (k, k * k)).collect();
    let crc =
        persist::write_segment(&persist::segment_path(&gen_dir, 0), &entries).expect("segment");
    let manifest = Manifest {
        shard_count: 1,
        partitioner_tag: persist::PARTITIONER_NONE,
        partitioner_param: 0,
        segments: vec![SegmentMeta {
            entries: entries.len() as u64,
            crc,
        }],
    };
    let mcrc = persist::write_manifest(&gen_dir, &manifest).expect("manifest");
    persist::write_commit(&gen_dir, mcrc).expect("commit");

    let back: PnbBst<u64, u64> = PnbBst::restore(&dir).expect("restore handmade");
    assert_eq!(back.snapshot().to_vec(), entries);
    let _ = std::fs::remove_dir_all(&dir);
}
