//! Property-based testing: every structure against a `BTreeMap` oracle.
//!
//! Random operation sequences (inserts / deletes / finds / range scans /
//! snapshots) must produce byte-identical results to the sequential
//! model when executed single-threaded — for the PNB-BST, the NB-BST
//! baseline, and the SeqBst reference.

use proptest::prelude::*;
use std::collections::BTreeMap;

use pnbbst_repro::{NbBst, PnbBst, SeqBst};

#[derive(Clone, Debug)]
enum Action {
    Insert(u16, u16),
    Remove(u16),
    Get(u16),
    Scan(u16, u16),
    Snapshot,
}

fn action_strategy(key_space: u16) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..key_space, any::<u16>()).prop_map(|(k, v)| Action::Insert(k, v)),
        3 => (0..key_space).prop_map(Action::Remove),
        2 => (0..key_space).prop_map(Action::Get),
        1 => (0..key_space, 0..key_space).prop_map(|(a, b)| Action::Scan(a.min(b), a.max(b))),
        1 => Just(Action::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pnbbst_matches_btreemap(actions in prop::collection::vec(action_strategy(64), 1..400)) {
        let tree: PnbBst<u16, u16> = PnbBst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        // Live snapshots with their expected (frozen) model states.
        let mut snaps: Vec<(pnb_bst::Snapshot<'_, u16, u16>, BTreeMap<u16, u16>)> = Vec::new();

        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(*k, *v), !model.contains_key(k));
                    model.entry(*k).or_insert(*v);
                }
                Action::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Action::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(k).copied());
                }
                Action::Scan(lo, hi) => {
                    let got = tree.range_scan(lo, hi);
                    let expect: Vec<(u16, u16)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
                Action::Snapshot => {
                    if snaps.len() < 4 {
                        snaps.push((tree.snapshot(), model.clone()));
                    }
                }
            }
        }

        // The final state matches...
        let expect: Vec<(u16, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree.to_vec(), expect);
        prop_assert_eq!(tree.check_invariants(), model.len());
        // ...and every live snapshot still reflects its own epoch.
        for (snap, frozen) in &snaps {
            let expect: Vec<(u16, u16)> = frozen.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(snap.to_vec(), expect);
            // Spot-check point reads against the frozen model.
            for k in [0u16, 13, 31, 63] {
                prop_assert_eq!(snap.get(&k), frozen.get(&k).copied());
            }
        }
    }

    #[test]
    fn nbbst_matches_btreemap(actions in prop::collection::vec(action_strategy(64), 1..400)) {
        let tree: NbBst<u16, u16> = NbBst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(*k, *v), !model.contains_key(k));
                    model.entry(*k).or_insert(*v);
                }
                Action::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Action::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(k).copied());
                }
                // NB-BST has no linearizable scan; use the quiescent dump
                // (we are single-threaded here, so it is exact).
                Action::Scan(lo, hi) => {
                    let got: Vec<(u16, u16)> = tree
                        .to_vec_quiescent()
                        .into_iter()
                        .filter(|(k, _)| k >= lo && k <= hi)
                        .collect();
                    let expect: Vec<(u16, u16)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
                Action::Snapshot => {}
            }
        }
        prop_assert_eq!(tree.check_invariants(), model.len());
    }

    #[test]
    fn seqbst_matches_btreemap(actions in prop::collection::vec(action_strategy(64), 1..400)) {
        let mut tree: SeqBst<u16, u16> = SeqBst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(*k, *v), !model.contains_key(k));
                    model.entry(*k).or_insert(*v);
                }
                Action::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Action::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(k).copied());
                }
                Action::Scan(lo, hi) => {
                    let expect: Vec<(u16, u16)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(tree.range_scan(lo, hi), expect);
                }
                Action::Snapshot => {}
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        let expect: Vec<(u16, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree.to_vec(), expect);
    }

    #[test]
    fn scan_bounds_agree_with_model(
        keys in prop::collection::btree_set(0u32..500, 0..120),
        lo in 0u32..500,
        width in 0u32..200,
    ) {
        let tree: PnbBst<u32, u32> = PnbBst::new();
        for &k in &keys {
            tree.insert(k, k * 3);
        }
        let hi = lo.saturating_add(width);
        let got: Vec<u32> = tree.range_scan(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let expect: Vec<u32> = keys.iter().copied().filter(|k| *k >= lo && *k <= hi).collect();
        prop_assert_eq!(tree.scan_count(&lo, &hi), expect.len());
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn set_wrapper_matches_btreeset(
        ops in prop::collection::vec((0u8..3, 0u16..100), 1..300)
    ) {
        use std::collections::BTreeSet;
        let set = pnb_bst::PnbBstSet::<u16>::new();
        let mut model = BTreeSet::new();
        for (op, k) in ops {
            match op {
                0 => { prop_assert_eq!(set.insert(k), model.insert(k)); }
                1 => { prop_assert_eq!(set.delete(&k), model.remove(&k)); }
                _ => { prop_assert_eq!(set.contains(&k), model.contains(&k)); }
            }
        }
        let got = set.to_vec();
        let expect: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
