//! Property-based testing: every structure against a `BTreeMap` oracle.
//!
//! Random operation sequences (inserts / deletes / finds / range scans /
//! snapshots) must produce byte-identical results to the sequential
//! model when executed single-threaded — for the PNB-BST, the NB-BST
//! baseline, and the SeqBst reference.

use proptest::prelude::*;
use std::collections::BTreeMap;

use pnbbst_repro::{NbBst, PnbBst, SeqBst};

#[derive(Clone, Debug)]
enum Action {
    Insert(u16, u16),
    Upsert(u16, u16),
    Remove(u16),
    Get(u16),
    Scan(u16, u16),
    Snapshot,
}

fn action_strategy(key_space: u16) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..key_space, any::<u16>()).prop_map(|(k, v)| Action::Insert(k, v)),
        2 => (0..key_space, any::<u16>()).prop_map(|(k, v)| Action::Upsert(k, v)),
        3 => (0..key_space).prop_map(Action::Remove),
        2 => (0..key_space).prop_map(Action::Get),
        1 => (0..key_space, 0..key_space).prop_map(|(a, b)| Action::Scan(a.min(b), a.max(b))),
        1 => Just(Action::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pnbbst_matches_btreemap(actions in prop::collection::vec(action_strategy(64), 1..400)) {
        let tree: PnbBst<u16, u16> = PnbBst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        // Live snapshots with their expected (frozen) model states.
        let mut snaps: Vec<(pnb_bst::Snapshot<'_, u16, u16>, BTreeMap<u16, u16>)> = Vec::new();

        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(*k, *v), !model.contains_key(k));
                    model.entry(*k).or_insert(*v);
                }
                Action::Upsert(k, v) => {
                    prop_assert_eq!(tree.upsert(*k, *v), model.insert(*k, *v));
                }
                Action::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Action::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(k).copied());
                }
                Action::Scan(lo, hi) => {
                    let got = tree.range_scan(lo, hi);
                    let expect: Vec<(u16, u16)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
                Action::Snapshot => {
                    if snaps.len() < 4 {
                        snaps.push((tree.snapshot(), model.clone()));
                    }
                }
            }
        }

        // The final state matches...
        let expect: Vec<(u16, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree.to_vec(), expect);
        prop_assert_eq!(tree.check_invariants(), model.len());
        // ...and every live snapshot still reflects its own epoch.
        for (snap, frozen) in &snaps {
            let expect: Vec<(u16, u16)> = frozen.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(snap.to_vec(), expect);
            // Spot-check point reads against the frozen model.
            for k in [0u16, 13, 31, 63] {
                prop_assert_eq!(snap.get(&k), frozen.get(&k).copied());
            }
        }
    }

    #[test]
    fn nbbst_matches_btreemap(actions in prop::collection::vec(action_strategy(64), 1..400)) {
        let tree: NbBst<u16, u16> = NbBst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for a in &actions {
            match a {
                // NB-BST has no atomic upsert (Caps::point_ops); exercise
                // plain set-semantics insert in its place.
                Action::Insert(k, v) | Action::Upsert(k, v) => {
                    prop_assert_eq!(tree.insert(*k, *v), !model.contains_key(k));
                    model.entry(*k).or_insert(*v);
                }
                Action::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Action::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(k).copied());
                }
                // NB-BST has no linearizable scan; use the quiescent dump
                // (we are single-threaded here, so it is exact).
                Action::Scan(lo, hi) => {
                    let got: Vec<(u16, u16)> = tree
                        .to_vec_quiescent()
                        .into_iter()
                        .filter(|(k, _)| k >= lo && k <= hi)
                        .collect();
                    let expect: Vec<(u16, u16)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
                Action::Snapshot => {}
            }
        }
        prop_assert_eq!(tree.check_invariants(), model.len());
    }

    #[test]
    fn seqbst_matches_btreemap(actions in prop::collection::vec(action_strategy(64), 1..400)) {
        let mut tree: SeqBst<u16, u16> = SeqBst::new();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for a in &actions {
            match a {
                Action::Insert(k, v) | Action::Upsert(k, v) => {
                    prop_assert_eq!(tree.insert(*k, *v), !model.contains_key(k));
                    model.entry(*k).or_insert(*v);
                }
                Action::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Action::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(k).copied());
                }
                Action::Scan(lo, hi) => {
                    let expect: Vec<(u16, u16)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(tree.range_scan(lo, hi), expect);
                }
                Action::Snapshot => {}
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        let expect: Vec<(u16, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree.to_vec(), expect);
    }

    #[test]
    fn scan_bounds_agree_with_model(
        keys in prop::collection::btree_set(0u32..500, 0..120),
        lo in 0u32..500,
        width in 0u32..200,
    ) {
        let tree: PnbBst<u32, u32> = PnbBst::new();
        for &k in &keys {
            tree.insert(k, k * 3);
        }
        let hi = lo.saturating_add(width);
        let got: Vec<u32> = tree.range_scan(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let expect: Vec<u32> = keys.iter().copied().filter(|k| *k >= lo && *k <= hi).collect();
        prop_assert_eq!(tree.scan_count(&lo, &hi), expect.len());
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn lazy_range_agrees_with_btreemap_for_all_nine_bound_combos(
        keys in prop::collection::btree_set(0u32..500, 0..120),
        a in 0u32..500,
        b in 0u32..500,
        lo_kind in 0u8..3,
        hi_kind in 0u8..3,
    ) {
        use std::ops::Bound;
        let (a, b) = (a.min(b), a.max(b));
        // BTreeMap::range panics on start == end with both bounds
        // excluded; skip that single invalid oracle input (the lazy
        // iterator itself returns empty for it — covered below).
        prop_assume!(!(a == b && lo_kind == 2 && hi_kind == 2));
        let mk = |kind: u8, v: u32| match kind {
            0 => Bound::Unbounded,
            1 => Bound::Included(v),
            _ => Bound::Excluded(v),
        };
        let lo = mk(lo_kind, a);
        let hi = mk(hi_kind, b);

        let tree: PnbBst<u32, u32> = PnbBst::new();
        let mut model: BTreeMap<u32, u32> = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k * 3);
            model.insert(k, k * 3);
        }
        let h = tree.pin();
        let got: Vec<(u32, u32)> = h.range((lo, hi)).collect();
        let expect: Vec<(u32, u32)> =
            model.range((lo, hi)).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, expect, "bounds {:?}..{:?}", lo, hi);

        // A snapshot sees the same cut through its own lazy iterator.
        let snap = tree.snapshot();
        let got: Vec<(u32, u32)> = snap.range((lo, hi)).collect();
        let expect: Vec<(u32, u32)> =
            model.range((lo, hi)).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, expect, "snapshot bounds {:?}..{:?}", lo, hi);
    }

    #[test]
    fn lazy_range_never_panics_on_degenerate_bounds(
        keys in prop::collection::btree_set(0u32..100, 0..40),
        a in 0u32..100,
        b in 0u32..100,
    ) {
        use std::ops::Bound;
        // Inverted and empty bound pairs — including the combination
        // BTreeMap::range refuses — must simply yield nothing.
        let tree: PnbBst<u32, u32> = PnbBst::new();
        for &k in &keys {
            tree.insert(k, k);
        }
        let h = tree.pin();
        let (lo, hi) = (a.max(b), a.min(b));
        if lo != hi {
            prop_assert_eq!(h.range(lo..hi).count(), 0);
            prop_assert_eq!(
                h.range((Bound::Excluded(lo), Bound::Excluded(hi))).count(),
                0
            );
        }
        prop_assert_eq!(
            h.range((Bound::Excluded(a), Bound::Excluded(a))).count(),
            0
        );
    }

    #[test]
    fn set_wrapper_matches_btreeset(
        ops in prop::collection::vec((0u8..3, 0u16..100), 1..300)
    ) {
        use std::collections::BTreeSet;
        let set = pnb_bst::PnbBstSet::<u16>::new();
        let mut model = BTreeSet::new();
        for (op, k) in ops {
            match op {
                0 => { prop_assert_eq!(set.insert(k), model.insert(k)); }
                1 => { prop_assert_eq!(set.delete(&k), model.remove(&k)); }
                _ => { prop_assert_eq!(set.contains(&k), model.contains(&k)); }
            }
        }
        let got = set.to_vec();
        let expect: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
