//! Cross-shard correctness battery for `pnb_shard::ShardedPnbBst`.
//!
//! Three layers:
//!
//! * **Proptest oracle** — random mixed sequences of point ops and
//!   range queries must produce byte-identical results to a `BTreeMap`
//!   at 1, 2 and 8 shards *simultaneously* (the same action sequence
//!   drives all three maps, so a routing bug at any shard count
//!   diverges from the model immediately).
//! * **Cut consistency under concurrency** — a writer updating one
//!   designated key per shard in *ascending* shard order must be
//!   observed *prefix-closed* by every cross-shard snapshot and every
//!   cross-shard merged range (which capture per-shard views in
//!   descending shard order): seeing transaction `v`'s write to shard
//!   `i` implies seeing its writes to every shard `j < i`. Torn
//!   observations (a later shard ahead of an earlier one) fail the
//!   test. See the `pnb-shard` crate docs, "Consistency model".
//! * **Concurrent mixed hammer** — sessions on every thread churn all
//!   shards; afterwards the union of shard contents must equal a
//!   sequential replay and pass every shard's structural validation.
//!
//! Iteration counts scale with `PNBBST_TEST_ITERS` (multiplier,
//! default 1), like the other concurrency suites.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pnbbst_repro::ShardedPnbBst;

/// `n` scaled by the `PNBBST_TEST_ITERS` multiplier (default 1).
fn scaled(n: u64) -> u64 {
    let scale = std::env::var("PNBBST_TEST_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    n * scale
}

#[derive(Clone, Debug)]
enum Action {
    Insert(u64, u64),
    Upsert(u64, u64),
    Remove(u64),
    Get(u64),
    Scan(u64, u64),
    Count,
}

/// Keys spread over many partitioner blocks (the default block is 4096
/// keys wide): multiply a small key index up so consecutive indices
/// land in different blocks and every shard sees traffic.
const KEY_STRIDE: u64 = 5_000;

fn action_strategy(key_space: u64) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Action::Insert(k * KEY_STRIDE, v)),
        2 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Action::Upsert(k * KEY_STRIDE, v)),
        3 => (0..key_space).prop_map(|k| Action::Remove(k * KEY_STRIDE)),
        2 => (0..key_space).prop_map(|k| Action::Get(k * KEY_STRIDE)),
        1 => (0..key_space, 0..key_space)
            .prop_map(|(a, b)| Action::Scan(a.min(b) * KEY_STRIDE, a.max(b) * KEY_STRIDE)),
        1 => Just(Action::Count),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_matches_btreemap_at_1_2_and_8_shards(
        actions in prop::collection::vec(action_strategy(64), 1..300)
    ) {
        let maps: Vec<ShardedPnbBst<u64, u64>> =
            [1usize, 2, 8].into_iter().map(ShardedPnbBst::new).collect();
        let sessions: Vec<_> = maps.iter().map(|m| m.pin()).collect();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    let absent = !model.contains_key(k);
                    for s in &sessions {
                        prop_assert_eq!(s.insert(*k, *v), absent);
                    }
                    model.entry(*k).or_insert(*v);
                }
                Action::Upsert(k, v) => {
                    let displaced = model.insert(*k, *v);
                    for s in &sessions {
                        prop_assert_eq!(s.upsert(*k, *v), displaced);
                    }
                }
                Action::Remove(k) => {
                    let removed = model.remove(k);
                    for s in &sessions {
                        prop_assert_eq!(s.remove(k), removed);
                    }
                }
                Action::Get(k) => {
                    for s in &sessions {
                        prop_assert_eq!(s.get(k), model.get(k).copied());
                    }
                }
                Action::Scan(lo, hi) => {
                    let expect: Vec<(u64, u64)> =
                        model.range(*lo..=*hi).map(|(k, v)| (*k, *v)).collect();
                    for s in &sessions {
                        // Both the closed-interval compat shim and the
                        // lazy merged iterator must agree with the model.
                        prop_assert_eq!(s.range_scan(lo, hi), expect.clone());
                        let lazy: Vec<(u64, u64)> = s.range(*lo..=*hi).collect();
                        prop_assert_eq!(lazy, expect.clone());
                    }
                }
                Action::Count => {
                    for s in &sessions {
                        prop_assert_eq!(s.len(), model.len());
                    }
                }
            }
        }

        // Final whole-map iteration and per-shard structural checks.
        let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        for s in &sessions {
            let got: Vec<(u64, u64)> = s.iter().collect();
            prop_assert_eq!(got, expect.clone());
        }
        drop(sessions);
        for m in &maps {
            prop_assert_eq!(m.check_invariants(), model.len());
        }
    }

    #[test]
    fn sharded_snapshots_freeze_their_cut(
        actions in prop::collection::vec(action_strategy(48), 1..150)
    ) {
        let map: ShardedPnbBst<u64, u64> = ShardedPnbBst::new(8);
        let session = map.pin();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut snaps = Vec::new();

        for (i, a) in actions.iter().enumerate() {
            match a {
                Action::Insert(k, v) => {
                    session.insert(*k, *v);
                    model.entry(*k).or_insert(*v);
                }
                Action::Upsert(k, v) => {
                    session.upsert(*k, *v);
                    model.insert(*k, *v);
                }
                Action::Remove(k) => {
                    session.remove(k);
                    model.remove(k);
                }
                _ => {}
            }
            if i.is_multiple_of(40) && snaps.len() < 4 {
                snaps.push((map.snapshot(), model.clone()));
            }
        }

        // Every live snapshot still reflects exactly its frozen model.
        for (snap, frozen) in &snaps {
            let expect: Vec<(u64, u64)> = frozen.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(snap.to_vec(), expect);
            prop_assert_eq!(snap.len(), frozen.len());
            for k in [0u64, 7 * KEY_STRIDE, 23 * KEY_STRIDE, 47 * KEY_STRIDE] {
                prop_assert_eq!(snap.get(&k), frozen.get(&k).copied());
            }
        }
    }
}

/// One designated key per shard, so a "transaction" can touch every
/// shard exactly once in ascending shard order.
fn designated_keys(map: &ShardedPnbBst<u64, u64>) -> Vec<u64> {
    let n = map.shard_count();
    let mut keys: Vec<Option<u64>> = vec![None; n];
    // Walk block-aligned keys (the default partitioner routes per
    // 4096-key block) until every shard has a representative.
    let mut found = 0;
    for block in 0..100_000u64 {
        let k = block * 4_096;
        let s = map.shard_of(&k);
        if keys[s].is_none() {
            keys[s] = Some(k);
            found += 1;
            if found == n {
                break;
            }
        }
    }
    keys.into_iter()
        .map(|k| k.expect("every shard reachable within the scanned blocks"))
        .collect()
}

/// The cut-consistency stress: writers update one key per shard in
/// ascending shard order; concurrent cross-shard snapshots and merged
/// ranges must observe those writes prefix-closed (versions monotone
/// non-increasing along the shard order). A single torn observation
/// fails.
fn cut_consistency_at(shards: usize) {
    let map: Arc<ShardedPnbBst<u64, u64>> = Arc::new(ShardedPnbBst::new(shards));
    let keys = designated_keys(&map);
    assert_eq!(keys.len(), shards);
    // Transaction 0: every key present with version 0 (so readers never
    // see "absent", only versions).
    {
        let s = map.pin();
        for &k in &keys {
            s.upsert(k, 0);
        }
    }

    let txns = scaled(2_000);
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Writer: ascending shard order, version v per transaction.
        let writer = {
            let map = Arc::clone(&map);
            let keys = keys.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut session = map.pin();
                for v in 1..=txns {
                    for &k in &keys {
                        session.upsert(k, v);
                    }
                    if v.is_multiple_of(64) {
                        session.refresh();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };

        // Readers: alternate between snapshots and session ranges.
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let map = Arc::clone(&map);
                let keys = keys.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut session = map.pin();
                    let mut observed = 0u64;
                    let mut rounds = 0u64;
                    // At least one round always runs, even if the
                    // writer finishes before this thread is scheduled
                    // (routine on a single-core box).
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let versions: Vec<u64> = if (rounds + r).is_multiple_of(2) {
                            let snap = session.snapshot();
                            keys.iter()
                                .map(|k| snap.get(k).expect("designated keys never vanish"))
                                .collect()
                        } else {
                            // The merged range reads the same descending
                            // capture discipline through the session.
                            let mut by_key: BTreeMap<u64, u64> = session.range(..).collect();
                            keys.iter()
                                .map(|k| by_key.remove(k).expect("designated keys never vanish"))
                                .collect()
                        };
                        // Prefix-closedness: monotone non-increasing
                        // along ascending shard order.
                        for w in versions.windows(2) {
                            assert!(
                                w[0] >= w[1],
                                "torn cross-shard view: versions {versions:?} \
                                 (a later shard is ahead of an earlier one)"
                            );
                        }
                        observed = observed.max(versions[0]);
                        rounds += 1;
                        session.refresh();
                        if done {
                            break;
                        }
                    }
                    (rounds, observed)
                })
            })
            .collect();

        writer.join().unwrap();
        let mut total_rounds = 0;
        for h in readers {
            let (rounds, observed) = h.join().unwrap();
            total_rounds += rounds;
            assert!(observed <= txns);
        }
        assert!(total_rounds > 0, "readers never completed a round");
    });

    // Quiescent: the final transaction is fully visible everywhere.
    let s = map.pin();
    for &k in &keys {
        assert_eq!(s.get(&k), Some(txns));
    }
    drop(s);
    assert_eq!(map.check_invariants(), shards);
}

#[test]
fn cross_shard_cut_consistency_1_shard() {
    cut_consistency_at(1);
}

#[test]
fn cross_shard_cut_consistency_2_shards() {
    cut_consistency_at(2);
}

#[test]
fn cross_shard_cut_consistency_8_shards() {
    cut_consistency_at(8);
}

/// Concurrent mixed hammer over all shards: per-thread sessions, every
/// operation class, then a sequential replay check and per-shard
/// structural validation.
#[test]
fn concurrent_mixed_hammer_preserves_shard_invariants() {
    let shards = 8;
    let map: Arc<ShardedPnbBst<u64, u64>> = Arc::new(ShardedPnbBst::new(shards));
    let nthreads = 4;
    let per_thread = scaled(8_000);

    std::thread::scope(|scope| {
        for t in 0..nthreads as u64 {
            let map = Arc::clone(&map);
            scope.spawn(move || {
                let mut session = map.pin();
                // Thread-disjoint stripes keyed far apart so every
                // thread's traffic spans many blocks (and so the final
                // contents are deterministic despite concurrency).
                for i in 0..per_thread {
                    let k = (t * per_thread + i) * 1_003;
                    session.insert(k, t);
                    if i.is_multiple_of(3) {
                        session.delete(&k);
                    }
                    if i.is_multiple_of(5) {
                        session.upsert(k, t + 100);
                    }
                    if i.is_multiple_of(256) {
                        let _ = session.range(k.saturating_sub(10_000)..=k).count();
                        session.refresh();
                    }
                }
            });
        }
    });

    // Sequential replay of one thread's stripe semantics.
    let mut expect_live = 0u64;
    for i in 0..per_thread {
        let mut present = true;
        if i.is_multiple_of(3) {
            present = false;
        }
        if i.is_multiple_of(5) {
            present = true; // upsert revives it
        }
        if present {
            expect_live += 1;
        }
    }

    let s = map.pin();
    let total = s.len() as u64;
    drop(s);
    assert_eq!(total, expect_live * nthreads as u64);
    assert_eq!(map.check_invariants() as u64, total);
}
