//! Counting-allocator battery for the arena pools (`testing-internals`).
//!
//! Installs a counting wrapper around the system allocator and asserts
//! the two steady-state properties the arena layer promises:
//!
//! 1. Read-only operations (`get` / `contains` / `range`) perform
//!    **zero** global allocations once the session and the scan-stack
//!    pool are warm.
//! 2. A warm 50i/50d update loop's global-allocation count collapses to
//!    the pool-miss fallback: the epoch collector recycles retired
//!    `Node`s/`Info`s back into the thread-local pools, so a warm round
//!    allocates a small fraction of what a cold round does (bag seals
//!    and queue links only, not per-operation nodes).
//!
//! The whole battery runs in one `#[test]` because `#[global_allocator]`
//! counters are process-global: Rust's parallel test harness would
//! otherwise interleave counts from unrelated tests.

use pnb_bst::testing::CountingAllocator;
use pnb_bst::{Handle, PnbBst};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn allocations() -> u64 {
    ALLOC.allocations()
}

const KEYS: u64 = 256;

/// One 50i/50d round over a bounded key set (interleaved, like the E1
/// update-only mix), with a collector checkpoint (re-pin + flush) so
/// retired memory can ripen and flow back into the pools.
fn churn_round(h: &mut Handle<'_, u64, u64>) {
    for k in 0..KEYS {
        h.insert(k, k);
        h.delete(&k);
        if k % 64 == 63 {
            h.refresh();
            h.flush();
        }
    }
}

#[test]
fn arena_steady_state_allocation_profile() {
    let tree: PnbBst<u64, u64> = PnbBst::new();
    let mut h = tree.pin();

    // ---- Phase 1: one cold round — pools are empty, every Node/Info
    // is a pool miss going straight to the global allocator.
    let cold_start = allocations();
    churn_round(&mut h);
    let cold_round = allocations() - cold_start;
    assert!(
        cold_round > 500,
        "a cold round must visibly hit the global allocator (saw {cold_round})"
    );

    // ---- Phase 2: saturate — keep churning so the two-epoch pipeline
    // fills and the free lists reach their working level.
    for _ in 0..40 {
        churn_round(&mut h);
    }

    // ---- Phase 3: warm churn — identical work, now pool-served. Only
    // the fallback paths may allocate (sealed-bag vectors, queue links,
    // burst imbalance while garbage ripens), so the per-round count
    // must collapse versus the cold round.
    const WARM_ROUNDS: u64 = 20;
    let warm_start = allocations();
    for _ in 0..WARM_ROUNDS {
        churn_round(&mut h);
    }
    let warm_round = (allocations() - warm_start) / WARM_ROUNDS;
    assert!(
        warm_round * 4 <= cold_round,
        "warm churn must be fallback-only: {warm_round}/round warm vs {cold_round} cold"
    );

    // ---- Phase 4: read-only steady state — strictly zero.
    for k in 0..KEYS {
        h.insert(k, k);
    }
    // Warm the pooled scan stack and any lazy session state.
    assert_eq!(h.range(..).count(), KEYS as usize);
    let _ = h.get(&0);
    let read_start = allocations();
    for k in 0..KEYS {
        assert_eq!(h.get(&k), Some(k));
        assert!(h.contains(&k));
    }
    assert_eq!(h.range(8..=199).count(), 192);
    assert_eq!(h.range(..).count(), KEYS as usize);
    assert!(!h.contains(&(KEYS + 1)));
    let read = allocations() - read_start;
    assert_eq!(
        read, 0,
        "read-only get/contains/range steady state must not touch the global allocator"
    );

    assert_eq!(tree.check_invariants(), KEYS as usize);
}
