//! Property-based schedules of *suspended* updates.
//!
//! Each generated schedule interleaves normal operations with paused
//! ones (inserts, deletes and upserts suspended right after their first
//! freeze CAS), periodic
//! scans (which handshake-abort pre-handshake attempts), helps-by-read,
//! and resumes — a deterministic, single-threaded exploration of the
//! protocol's decision tree. After every step the tree must agree with a
//! model that applies the paper's linearization rules:
//!
//! * a paused update is linearized at its (already performed) first
//!   freeze CAS **iff it eventually commits**;
//! * it commits iff some operation helps it before a scan closes its
//!   phase; a scan first helps (and thereby aborts) any pre-handshake
//!   attempt it meets, so after a scan the attempt is dead.
//!
//! Case counts scale with `PNBBST_TEST_ITERS` (a multiplier applied by
//! the proptest runner, default 1) or can be overridden absolutely with
//! `PROPTEST_CASES`; the defaults are CI-sized, `PNBBST_TEST_ITERS=50`
//! is the deep overnight setting (see README.md).

use proptest::prelude::*;
use std::collections::BTreeMap;

use pnb_bst::testing::{PauseOutcome, PausedState, PausedUpdate};
use pnb_bst::PnbBst;

#[derive(Clone, Copy, Debug)]
enum Step {
    Insert(u8),
    Delete(u8),
    PausedInsert(u8),
    PausedDelete(u8),
    PausedUpsert(u8),
    /// `get` on the key of the oldest in-flight paused op (forces a
    /// help-to-commit).
    HelpOldest,
    /// Range scan over everything (aborts all undecided in-flight ops).
    Scan,
    /// Resume the oldest in-flight paused op (commit or abort discovery).
    ResumeOldest,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0u8..32).prop_map(Step::Insert),
        3 => (0u8..32).prop_map(Step::Delete),
        2 => (0u8..32).prop_map(Step::PausedInsert),
        2 => (0u8..32).prop_map(Step::PausedDelete),
        2 => (0u8..32).prop_map(Step::PausedUpsert),
        2 => Just(Step::HelpOldest),
        2 => Just(Step::Scan),
        2 => Just(Step::ResumeOldest),
    ]
}

/// Which paused operation is in flight (determines the linearization
/// rule applied to the model when it commits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Insert,
    Delete,
    Upsert,
}

struct InFlight<'t> {
    handle: PausedUpdate<'t, u8, u16>,
    key: u8,
    class: OpClass,
    value: u16,
    /// Whether the key was present in the model when the op published
    /// (drives the upsert commit assertion: replace ⇔ key was present).
    key_was_present: bool,
}

/// Apply a committed paused op to the model.
fn settle(
    model: &mut BTreeMap<u8, u16>,
    key: u8,
    class: OpClass,
    value: u16,
    key_was_present: bool,
    committed: bool,
) {
    if !committed {
        return;
    }
    match class {
        OpClass::Insert => {
            let prev = model.insert(key, value);
            assert!(prev.is_none(), "paused insert committed over existing key");
        }
        OpClass::Delete => {
            let prev = model.remove(&key);
            assert!(prev.is_some(), "paused delete committed on missing key");
        }
        OpClass::Upsert => {
            // The paused upsert linearizes at its (already performed)
            // first freeze CAS: the shape it published (insert vs
            // replace) was decided by the key's presence at that moment.
            let prev = model.insert(key, value);
            assert_eq!(
                prev.is_some(),
                key_was_present,
                "upsert shape must match presence at publish time"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paused_schedules_agree_with_linearization_rules(
        steps in prop::collection::vec(step_strategy(), 1..120)
    ) {
        let tree: PnbBst<u8, u16> = PnbBst::new();
        let mut model: BTreeMap<u8, u16> = BTreeMap::new();
        let mut inflight: Vec<InFlight<'_>> = Vec::new();
        let mut stamp: u16 = 0;

        for step in steps {
            stamp += 1;
            match step {
                Step::Insert(k) => {
                    // A normal op first helps every in-flight op it
                    // meets; since all in-flight ops are somewhere in
                    // the tree, conservatively settle any whose key
                    // neighbourhood this op touches. To keep the model
                    // exact we only issue plain ops when nothing is in
                    // flight on the same key.
                    if inflight.iter().any(|o| o.key == k) {
                        continue;
                    }
                    let r = tree.insert(k, stamp);
                    // The insert may have helped (committed) in-flight
                    // ops at other keys on its path — settle any that
                    // are now decided.
                    settle_decided(&tree, &mut model, &mut inflight);
                    prop_assert_eq!(r, !model.contains_key(&k), "insert {}", k);
                    if r {
                        model.insert(k, stamp);
                    }
                }
                Step::Delete(k) => {
                    if inflight.iter().any(|o| o.key == k) {
                        continue;
                    }
                    let r = tree.delete(&k);
                    settle_decided(&tree, &mut model, &mut inflight);
                    prop_assert_eq!(r, model.remove(&k).is_some(), "delete {}", k);
                }
                Step::PausedInsert(k) => {
                    if inflight.iter().any(|o| o.key == k) {
                        continue;
                    }
                    match tree.insert_paused(k, stamp) {
                        PauseOutcome::Completed(r) => {
                            settle_decided(&tree, &mut model, &mut inflight);
                            prop_assert_eq!(r, false, "completed-without-pause means duplicate");
                            prop_assert!(model.contains_key(&k));
                        }
                        PauseOutcome::Paused(h) => {
                            // The attempt may have helped others while searching.
                            settle_decided(&tree, &mut model, &mut inflight);
                            inflight.push(InFlight {
                                handle: h,
                                key: k,
                                class: OpClass::Insert,
                                value: stamp,
                                key_was_present: false,
                            });
                        }
                    }
                }
                Step::PausedDelete(k) => {
                    if inflight.iter().any(|o| o.key == k) {
                        continue;
                    }
                    match tree.delete_paused(&k) {
                        PauseOutcome::Completed(r) => {
                            settle_decided(&tree, &mut model, &mut inflight);
                            prop_assert_eq!(r, false, "completed-without-pause means missing");
                            prop_assert!(!model.contains_key(&k));
                        }
                        PauseOutcome::Paused(h) => {
                            settle_decided(&tree, &mut model, &mut inflight);
                            inflight.push(InFlight {
                                handle: h,
                                key: k,
                                class: OpClass::Delete,
                                value: 0,
                                key_was_present: true,
                            });
                        }
                    }
                }
                Step::PausedUpsert(k) => {
                    if inflight.iter().any(|o| o.key == k) {
                        continue;
                    }
                    let present = model.contains_key(&k);
                    match tree.upsert_paused(k, stamp) {
                        PauseOutcome::Completed(_) => {
                            unreachable!("upsert always publishes (both shapes mutate)")
                        }
                        PauseOutcome::Paused(h) => {
                            settle_decided(&tree, &mut model, &mut inflight);
                            // `present` is still accurate: settle_decided
                            // only applies ops on other keys (nothing on
                            // key k is in flight by the guard above).
                            inflight.push(InFlight {
                                handle: h,
                                key: k,
                                class: OpClass::Upsert,
                                value: stamp,
                                key_was_present: present,
                            });
                        }
                    }
                }
                Step::HelpOldest => {
                    if inflight.is_empty() {
                        continue;
                    }
                    let key = inflight[0].key;
                    let _ = tree.get(&key); // forces help on that path
                    settle_decided(&tree, &mut model, &mut inflight);
                    prop_assert!(
                        inflight.iter().all(|o| o.key != key),
                        "a get on the pending key must decide the op"
                    );
                }
                Step::Scan => {
                    // The scan helps-and-aborts every undecided attempt
                    // it traverses, then reads a consistent cut. All
                    // in-flight ops are pre-handshake, so they die.
                    let got: Vec<(u8, u16)> = tree.range_scan(&0, &u8::MAX);
                    settle_decided(&tree, &mut model, &mut inflight);
                    prop_assert!(inflight.is_empty(), "scan decides every in-flight op");
                    let expect: Vec<(u8, u16)> =
                        model.iter().map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect, "scan content");
                }
                Step::ResumeOldest => {
                    if inflight.is_empty() {
                        continue;
                    }
                    let InFlight { handle, key, class, value, key_was_present } =
                        inflight.remove(0);
                    let committed = handle.resume();
                    settle(&mut model, key, class, value, key_was_present, committed);
                }
            }
        }

        // Drain the remaining in-flight operations.
        for InFlight { handle, key, class, value, key_was_present } in inflight.drain(..) {
            let committed = handle.resume();
            settle(&mut model, key, class, value, key_was_present, committed);
        }
        let expect: Vec<(u8, u16)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree.to_vec(), expect, "final content");
        prop_assert_eq!(tree.check_invariants(), model.len());
    }
}

/// Settle every in-flight op that has been decided (committed/aborted)
/// by helpers as a side effect of another operation.
fn settle_decided(
    _tree: &PnbBst<u8, u16>,
    model: &mut BTreeMap<u8, u16>,
    inflight: &mut Vec<InFlight<'_>>,
) {
    let mut i = 0;
    while i < inflight.len() {
        match inflight[i].handle.state() {
            PausedState::Committed => {
                let InFlight {
                    handle,
                    key,
                    class,
                    value,
                    key_was_present,
                } = inflight.remove(i);
                settle(model, key, class, value, key_was_present, true);
                // Creator-side cleanup (discovers the commit).
                assert!(handle.resume());
            }
            PausedState::Aborted => {
                let InFlight {
                    handle,
                    key,
                    class,
                    value,
                    key_was_present,
                } = inflight.remove(i);
                settle(model, key, class, value, key_was_present, false);
                // The creator must still reclaim the aborted subtree.
                assert!(!handle.resume());
            }
            _ => i += 1,
        }
    }
}
