//! Deterministic tests of the helping, handshake and crash-tolerance
//! mechanisms, using the `testing-internals` pause API to freeze an
//! update mid-protocol (right after its first freeze CAS — the moment it
//! becomes visible to other threads).
//!
//! These reproduce the scenarios the paper argues about in §4.1,
//! including the `Insert(1)` / `RangeScan` / `Find(1)` linearizability
//! example.

use pnb_bst::testing::{PauseOutcome, PausedState};
use pnb_bst::PnbBst;

fn paused<K, V>(out: PauseOutcome<'_, K, V>) -> pnb_bst::testing::PausedUpdate<'_, K, V> {
    match out {
        PauseOutcome::Paused(p) => p,
        PauseOutcome::Completed(_) => panic!("expected the operation to pause"),
    }
}

#[test]
fn find_helps_a_stalled_insert_to_completion() {
    // §4.1: a Find that reaches the leaf while an insert is pending at
    // its parent must help the insert (otherwise it could return a
    // result that contradicts the insert's linearization point).
    let tree: PnbBst<u64, u64> = PnbBst::new();
    let op = paused(tree.insert_paused(1, 10));
    assert_eq!(op.seq(), 0);
    assert_eq!(op.state(), PausedState::Undecided);

    // The insert is stalled after its flag CAS. A Find must complete it
    // and then observe the key.
    assert_eq!(tree.get(&1), Some(10), "Find must help the pending insert");
    assert_eq!(op.state(), PausedState::Committed);

    // Resuming discovers the helpers already won.
    assert!(op.resume(), "resume reports the committed outcome");
    assert_eq!(tree.check_invariants(), 1);
}

#[test]
fn scan_aborts_a_pre_handshake_insert_via_the_counter() {
    // The handshake (§4.1): the insert flags in phase 0 but has not yet
    // re-checked Counter. A RangeScan then closes phase 0. Whoever helps
    // the insert afterwards (the scan itself does, at the flagged root)
    // must pro-actively ABORT it — the scan may already have passed the
    // leaf, so letting the insert commit in phase 0 would violate
    // linearizability.
    let tree: PnbBst<u64, u64> = PnbBst::new();
    let op = paused(tree.insert_paused(1, 10));
    assert_eq!(op.seq(), 0);

    let seen = tree.range_scan(&0, &100);
    assert!(seen.is_empty(), "scan must not observe the aborted insert");
    assert_eq!(
        op.state(),
        PausedState::Aborted,
        "the scan's helping must have handshake-aborted the attempt"
    );
    assert!(!op.resume(), "resume reports the abort");

    // The key never made it in; a real (non-paused) insert now works.
    assert_eq!(tree.get(&1), None);
    assert!(tree.insert(1, 11));
    assert_eq!(tree.get(&1), Some(11));
    assert_eq!(tree.check_invariants(), 1);
}

#[test]
fn find_helps_a_stalled_delete() {
    let tree: PnbBst<u64, u64> = PnbBst::new();
    assert!(tree.insert(1, 10));
    assert!(tree.insert(2, 20));

    let op = paused(tree.delete_paused(&1));
    assert_eq!(op.state(), PausedState::Undecided);

    // The Find for the doomed key must help the delete finish and then
    // miss the key.
    assert_eq!(tree.get(&1), None, "Find must help the pending delete");
    assert_eq!(op.state(), PausedState::Committed);
    assert!(op.resume());
    assert_eq!(tree.get(&2), Some(20));
    assert_eq!(tree.check_invariants(), 1);
}

#[test]
fn scan_aborts_a_pre_handshake_delete() {
    let tree: PnbBst<u64, u64> = PnbBst::new();
    assert!(tree.insert(1, 10));
    assert!(tree.insert(2, 20));

    let op = paused(tree.delete_paused(&1));
    let seen: Vec<u64> = tree
        .range_scan(&0, &100)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(seen, vec![1, 2], "scan still sees the key: delete aborted");
    assert_eq!(op.state(), PausedState::Aborted);
    assert!(!op.resume());

    // The key survives; deleting for real works.
    assert!(tree.delete(&1));
    assert_eq!(tree.check_invariants(), 1);
}

#[test]
fn abandoned_insert_is_completed_by_helpers_crash_tolerance() {
    // The paper's crash model: a process may fail at any point; the
    // implementation tolerates any number of crash failures because any
    // thread that runs into a frozen node completes the pending
    // operation from its Info object.
    let tree: PnbBst<u64, u64> = PnbBst::new();
    let op = paused(tree.insert_paused(5, 50));
    op.abandon(); // the inserting process "crashes"

    // A completely unrelated reader finishes the dead thread's work.
    assert_eq!(tree.get(&5), Some(50));
    assert!(tree.contains(&5));
    assert_eq!(tree.check_invariants(), 1);
}

#[test]
fn abandoned_delete_is_completed_by_a_scan() {
    let tree: PnbBst<u64, u64> = PnbBst::new();
    for k in 0..8 {
        tree.insert(k, k);
    }
    let op = paused(tree.delete_paused(&3));
    // Crash *after* the handshake would be needed for the scan to see a
    // Try-state op; here the op is pre-handshake, so the scan aborts it
    // — but a subsequent Find on the same neighbourhood re-observes the
    // tree in a clean state either way.
    op.abandon();
    let _ = tree.range_scan(&0, &100); // helps (aborts) the orphan
                                       // The delete never committed (it was pre-handshake), so 3 is alive:
    assert_eq!(tree.get(&3), Some(3));
    // And the neighbourhood is fully operational:
    assert!(tree.delete(&3));
    assert!(tree.insert(3, 33));
    assert_eq!(tree.get(&3), Some(33));
    assert_eq!(tree.check_invariants(), 8);
}

#[test]
fn updates_in_other_subtrees_proceed_despite_a_stalled_update() {
    // "Updates operating on different parts of the tree do not interfere
    // with one another" — a stalled update must not impede distant ones.
    let tree: PnbBst<u64, u64> = PnbBst::new();
    for k in [100u64, 200, 300, 400] {
        tree.insert(k, k);
    }
    let op = paused(tree.insert_paused(150, 150)); // stalls near 100/200

    // Far-away updates must succeed without helping the stalled one.
    assert!(tree.insert(350, 350));
    assert!(tree.delete(&400));
    assert_eq!(tree.get(&300), Some(300));
    // The stalled op is still undecided: nobody needed to touch it.
    assert_eq!(op.state(), PausedState::Undecided);

    // Now finish it explicitly.
    assert!(op.resume());
    assert_eq!(tree.get(&150), Some(150));
    assert_eq!(tree.check_invariants(), 5);
}

#[test]
fn pause_outcomes_for_noop_updates() {
    let tree: PnbBst<u64, u64> = PnbBst::new();
    tree.insert(1, 10);
    // Inserting a duplicate completes (false) without pausing.
    match tree.insert_paused(1, 99) {
        PauseOutcome::Completed(b) => assert!(!b),
        PauseOutcome::Paused(_) => panic!("duplicate insert must not pause"),
    }
    // Deleting a missing key completes (false) without pausing.
    match tree.delete_paused(&42) {
        PauseOutcome::Completed(b) => assert!(!b),
        PauseOutcome::Paused(_) => panic!("missing delete must not pause"),
    }
    assert_eq!(tree.get(&1), Some(10), "noop paths leave the tree intact");
}

#[test]
fn many_sequential_paused_cycles_stay_structurally_sound() {
    // Repeated pause/help/resume cycles across phases.
    let tree: PnbBst<u64, u64> = PnbBst::new();
    for round in 0..50u64 {
        let op = paused(tree.insert_paused(round, round));
        if round % 2 == 0 {
            // Helper path: a find completes it.
            assert_eq!(tree.get(&round), Some(round));
            assert!(op.resume());
        } else {
            // Scan path: handshake abort, then real insert.
            let _ = tree.scan_count(&0, &1_000);
            assert!(!op.resume());
            assert!(tree.insert(round, round));
        }
    }
    assert_eq!(tree.check_invariants(), 50);
    let all: Vec<u64> = tree.to_vec().into_iter().map(|(k, _)| k).collect();
    assert_eq!(all, (0..50).collect::<Vec<_>>());
}

#[test]
fn concurrent_finds_race_to_help_one_stalled_insert() {
    use std::sync::Arc;
    let tree = Arc::new(PnbBst::<u64, u64>::new());
    for round in 0..30u64 {
        let op = match tree.insert_paused(round, round * 10) {
            PauseOutcome::Paused(p) => p,
            PauseOutcome::Completed(_) => panic!("fresh key must pause"),
        };
        // Several threads all try to help at once; exactly one freeze
        // chain must win and the result must be a single committed
        // insert.
        let results: Vec<Option<u64>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let tree = &tree;
                    s.spawn(move || tree.get(&round))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r, Some(round * 10), "every helper sees the committed value");
        }
        assert!(op.resume());
    }
    assert_eq!(tree.check_invariants(), 30);
}
