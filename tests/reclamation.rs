//! Memory-reclamation accounting tests.
//!
//! The paper assumes a garbage collector; this implementation builds
//! reclamation from epochs + reference counts (DESIGN.md §3). These
//! tests validate the two failure modes that matter:
//!
//! * **double free / premature free** — caught by `dropped > created`
//!   accounting (and by crashes under address reuse);
//! * **unbounded leaks** — caught by requiring that the overwhelming
//!   majority of retired values are actually destroyed once the epoch
//!   collector is given the chance to run.
//!
//! `crossbeam-epoch` destroys deferred garbage only as epochs advance,
//! so the tests pump `pin().flush()` to drain the queues.

use pnb_bst::PnbBst;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A value whose constructions and destructions are counted.
struct Counted {
    live: Arc<AtomicI64>,
}

impl Counted {
    fn new(live: &Arc<AtomicI64>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Counted {
            live: Arc::clone(live),
        }
    }
}

impl Clone for Counted {
    fn clone(&self) -> Self {
        self.live.fetch_add(1, Ordering::SeqCst);
        Counted {
            live: Arc::clone(&self.live),
        }
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        let prev = self.live.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "double free detected: live count went negative");
    }
}

fn drain_epochs() {
    for _ in 0..256 {
        crossbeam_epoch::pin().flush();
    }
}

/// Drain until the live counter reaches `target` (or a generous retry
/// budget runs out). Garbage bags are sealed with an epoch and become
/// collectible only two advances later, and advancement depends on all
/// participants' pin timing — so a single drain pass from one thread is
/// not always enough. Pinning from a few fresh threads reliably expires
/// the stragglers (verified empirically: residue always reaches zero).
fn drain_epochs_until(live: &Arc<AtomicI64>, target: i64) {
    for _ in 0..200 {
        if live.load(Ordering::SeqCst) == target {
            return;
        }
        drain_epochs();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(drain_epochs);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn sequential_churn_frees_everything() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree: PnbBst<u64, Counted> = PnbBst::new();
        for round in 0..20u64 {
            for k in 0..200 {
                assert!(tree.insert(k, Counted::new(&live)));
            }
            // Interleave scans so prev-chains actually form.
            let _ = tree.scan_count(&0, &200);
            for k in 0..200u64 {
                let shifted = (k + round) % 200;
                assert!(tree.delete(&shifted));
            }
            assert_eq!(tree.len(), 0);
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    let remaining = live.load(Ordering::SeqCst);
    assert!(
        remaining == 0,
        "leaked {remaining} values after drop + epoch drain"
    );
}

#[test]
fn dropping_a_populated_tree_frees_all_values() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree: PnbBst<u64, Counted> = PnbBst::new();
        for k in 0..1_000 {
            tree.insert(k, Counted::new(&live));
        }
        // Failed inserts must not leak their cloned values either.
        for k in 0..1_000 {
            assert!(!tree.insert(k, Counted::new(&live)));
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    assert_eq!(live.load(Ordering::SeqCst), 0, "values leaked");
}

#[test]
fn concurrent_churn_frees_everything_after_quiescence() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree = Arc::new(PnbBst::<u64, Counted>::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                s.spawn(move || {
                    let base = t * 10_000;
                    for round in 0..10 {
                        for i in 0..100 {
                            tree.insert(base + i, Counted::new(&live));
                        }
                        let _ = tree.scan_count(&base, &(base + 100));
                        for i in 0..100 {
                            tree.delete(&(base + i));
                        }
                        let _ = round;
                    }
                });
            }
            // A scanner thread keeps old versions alive mid-run.
            let tree2 = Arc::clone(&tree);
            s.spawn(move || {
                for _ in 0..50 {
                    let snap = tree2.snapshot();
                    let _ = snap.len();
                }
            });
        });
        assert_eq!(tree.len(), 0);
        drop(tree);
    }
    // Each thread's garbage bag drains as epochs advance.
    drain_epochs_until(&live, 0);
    let remaining = live.load(Ordering::SeqCst);
    assert_eq!(
        remaining, 0,
        "leaked {remaining} values after concurrent churn"
    );
}

#[test]
fn snapshot_extends_value_lifetime_but_not_forever() {
    let live = Arc::new(AtomicI64::new(0));
    let tree: PnbBst<u64, Counted> = PnbBst::new();
    for k in 0..100 {
        tree.insert(k, Counted::new(&live));
    }
    let snap = tree.snapshot();
    for k in 0..100 {
        tree.delete(&k);
    }
    drain_epochs();
    // The snapshot still reads all 100 values — they cannot have been
    // freed while it is alive.
    assert_eq!(snap.len(), 100);
    assert!(
        live.load(Ordering::SeqCst) >= 100,
        "snapshot values freed early"
    );
    drop(snap);
    drop(tree);
    drain_epochs_until(&live, 0);
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "values leaked after snapshot drop"
    );
}

#[test]
fn nbbst_reclamation_accounting() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree: nb_bst::NbBst<u64, Counted> = nb_bst::NbBst::new();
        for round in 0..10u64 {
            for k in 0..300 {
                tree.insert(k, Counted::new(&live));
            }
            for k in 0..300 {
                tree.delete(&k);
            }
            let _ = round;
        }
        for k in 0..50 {
            tree.insert(k, Counted::new(&live)); // leave some resident
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    assert_eq!(live.load(Ordering::SeqCst), 0, "nb-bst leaked values");
}

#[test]
fn string_keys_and_boxed_values() {
    // Non-Copy keys and heap values exercise clone/drop paths everywhere.
    let tree: PnbBst<String, Box<[u8; 64]>> = PnbBst::new();
    for i in 0..200 {
        assert!(tree.insert(format!("key-{i:04}"), Box::new([i as u8; 64])));
    }
    assert_eq!(tree.len(), 200);
    assert_eq!(tree.get(&"key-0042".to_string()).map(|b| b[0]), Some(42));
    // Range scan over string keys is lexicographic.
    let window = tree.range_scan(&"key-0010".to_string(), &"key-0013".to_string());
    let keys: Vec<String> = window.into_iter().map(|(k, _)| k).collect();
    assert_eq!(keys, vec!["key-0010", "key-0011", "key-0012", "key-0013"]);
    for i in (0..200).step_by(2) {
        assert!(tree.delete(&format!("key-{i:04}")));
    }
    assert_eq!(tree.check_invariants(), 100);
}
