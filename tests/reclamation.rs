//! Memory-reclamation accounting tests.
//!
//! The paper assumes a garbage collector; this implementation builds
//! reclamation from epochs + reference counts (DESIGN.md §3). These
//! tests validate the two failure modes that matter:
//!
//! * **double free / premature free** — caught by `dropped > created`
//!   accounting (and by crashes under address reuse);
//! * **unbounded leaks** — caught by requiring that the overwhelming
//!   majority of retired values are actually destroyed once the epoch
//!   collector is given the chance to run.
//!
//! `crossbeam-epoch` destroys deferred garbage only as epochs advance,
//! so the tests pump `pin().flush()` to drain the queues.
//!
//! The battery at the bottom targets the lock-free collector
//! specifically: exact drop accounting under a mixed
//! insert/upsert/delete/range workload, a use-after-free poison
//! sentinel, thread churn (bag + registry-slot hand-off on exit), and
//! `Handle::refresh` unblocking epoch advancement — observable through
//! `pnb_bst::collector_stats()` when built with `--features stats`.

use pnb_bst::PnbBst;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A value whose constructions and destructions are counted.
struct Counted {
    live: Arc<AtomicI64>,
}

impl Counted {
    fn new(live: &Arc<AtomicI64>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Counted {
            live: Arc::clone(live),
        }
    }
}

impl Clone for Counted {
    fn clone(&self) -> Self {
        self.live.fetch_add(1, Ordering::SeqCst);
        Counted {
            live: Arc::clone(&self.live),
        }
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        let prev = self.live.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "double free detected: live count went negative");
    }
}

fn drain_epochs() {
    for _ in 0..256 {
        crossbeam_epoch::pin().flush();
    }
}

/// Drain until the live counter reaches `target` (or a generous retry
/// budget runs out). Garbage bags are sealed with an epoch and become
/// collectible only two advances later, and advancement depends on all
/// participants' pin timing — so a single drain pass from one thread is
/// not always enough. Pinning from a few fresh threads reliably expires
/// the stragglers (verified empirically: residue always reaches zero).
fn drain_epochs_until(live: &Arc<AtomicI64>, target: i64) {
    for _ in 0..200 {
        if live.load(Ordering::SeqCst) == target {
            return;
        }
        drain_epochs();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(drain_epochs);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn sequential_churn_frees_everything() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree: PnbBst<u64, Counted> = PnbBst::new();
        for round in 0..20u64 {
            for k in 0..200 {
                assert!(tree.insert(k, Counted::new(&live)));
            }
            // Interleave scans so prev-chains actually form.
            let _ = tree.scan_count(&0, &200);
            for k in 0..200u64 {
                let shifted = (k + round) % 200;
                assert!(tree.delete(&shifted));
            }
            assert_eq!(tree.len(), 0);
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    let remaining = live.load(Ordering::SeqCst);
    assert!(
        remaining == 0,
        "leaked {remaining} values after drop + epoch drain"
    );
}

#[test]
fn dropping_a_populated_tree_frees_all_values() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree: PnbBst<u64, Counted> = PnbBst::new();
        for k in 0..1_000 {
            tree.insert(k, Counted::new(&live));
        }
        // Failed inserts must not leak their cloned values either.
        for k in 0..1_000 {
            assert!(!tree.insert(k, Counted::new(&live)));
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    assert_eq!(live.load(Ordering::SeqCst), 0, "values leaked");
}

#[test]
fn concurrent_churn_frees_everything_after_quiescence() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree = Arc::new(PnbBst::<u64, Counted>::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                s.spawn(move || {
                    let base = t * 10_000;
                    for round in 0..10 {
                        for i in 0..100 {
                            tree.insert(base + i, Counted::new(&live));
                        }
                        let _ = tree.scan_count(&base, &(base + 100));
                        for i in 0..100 {
                            tree.delete(&(base + i));
                        }
                        let _ = round;
                    }
                });
            }
            // A scanner thread keeps old versions alive mid-run.
            let tree2 = Arc::clone(&tree);
            s.spawn(move || {
                for _ in 0..50 {
                    let snap = tree2.snapshot();
                    let _ = snap.len();
                }
            });
        });
        assert_eq!(tree.len(), 0);
        drop(tree);
    }
    // Each thread's garbage bag drains as epochs advance.
    drain_epochs_until(&live, 0);
    let remaining = live.load(Ordering::SeqCst);
    assert_eq!(
        remaining, 0,
        "leaked {remaining} values after concurrent churn"
    );
}

#[test]
fn snapshot_extends_value_lifetime_but_not_forever() {
    let live = Arc::new(AtomicI64::new(0));
    let tree: PnbBst<u64, Counted> = PnbBst::new();
    for k in 0..100 {
        tree.insert(k, Counted::new(&live));
    }
    let snap = tree.snapshot();
    for k in 0..100 {
        tree.delete(&k);
    }
    drain_epochs();
    // The snapshot still reads all 100 values — they cannot have been
    // freed while it is alive.
    assert_eq!(snap.len(), 100);
    assert!(
        live.load(Ordering::SeqCst) >= 100,
        "snapshot values freed early"
    );
    drop(snap);
    drop(tree);
    drain_epochs_until(&live, 0);
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "values leaked after snapshot drop"
    );
}

#[test]
fn nbbst_reclamation_accounting() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree: nb_bst::NbBst<u64, Counted> = nb_bst::NbBst::new();
        for round in 0..10u64 {
            for k in 0..300 {
                tree.insert(k, Counted::new(&live));
            }
            for k in 0..300 {
                tree.delete(&k);
            }
            let _ = round;
        }
        for k in 0..50 {
            tree.insert(k, Counted::new(&live)); // leave some resident
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    assert_eq!(live.load(Ordering::SeqCst), 0, "nb-bst leaked values");
}

// ---------------------------------------------------------------------------
// Lock-free collector battery
// ---------------------------------------------------------------------------

/// Exact drop accounting over the full operation set: four threads run a
/// mixed insert/upsert/delete/range workload through pinned sessions
/// (the hot-path API), refreshing between batches. After quiescence
/// every retired value's destructor must have run exactly once — a
/// double free trips the `Counted` underflow assert, a leak trips the
/// zero-residue assert.
#[test]
fn mixed_workload_drop_accounting_is_exact() {
    let live = Arc::new(AtomicI64::new(0));
    {
        let tree = Arc::new(PnbBst::<u64, Counted>::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                let live = Arc::clone(&live);
                s.spawn(move || {
                    let base = t * 10_000;
                    let mut session = tree.pin();
                    for round in 0..8u64 {
                        for i in 0..64 {
                            session.insert(base + i, Counted::new(&live));
                        }
                        // Upserts displace live values: the displaced
                        // clone must be retired and dropped too.
                        for i in 0..64 {
                            let _ = session.upsert(base + i, Counted::new(&live));
                        }
                        // Ranges form prev-chains mid-churn.
                        assert!(session.range(base..base + 64).count() <= 64);
                        for i in 0..64 {
                            session.delete(&(base + i));
                        }
                        session.refresh();
                        let _ = round;
                    }
                });
            }
        });
        assert_eq!(tree.len(), 0);
    }
    drain_epochs_until(&live, 0);
    let remaining = live.load(Ordering::SeqCst);
    assert_eq!(
        remaining, 0,
        "leaked {remaining} values after mixed workload"
    );
}

/// Use-after-free sentinel: every value carries a magic word that its
/// destructor overwrites with poison. Readers clone values out of the
/// tree while pinned and assert the clone was taken from un-poisoned
/// memory — a premature free (epoch bug) makes a reader observe the
/// poison (or crash), both of which fail the test.
#[test]
fn readers_never_observe_poisoned_values() {
    const GOOD: u64 = 0xFEED_FACE_CAFE_F00D;
    const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;

    struct Sentinel {
        magic: u64,
    }
    impl Sentinel {
        fn new() -> Self {
            Sentinel { magic: GOOD }
        }
    }
    impl Clone for Sentinel {
        fn clone(&self) -> Self {
            // Cloning happens inside `get`/`range` under the reader's
            // pin: the source must still be live.
            assert_eq!(self.magic, GOOD, "reader cloned a freed (poisoned) value");
            Sentinel { magic: GOOD }
        }
    }
    impl Drop for Sentinel {
        fn drop(&mut self) {
            // Volatile so the "dead" store to soon-freed memory is not
            // elided — this is the whole point of the canary.
            unsafe { std::ptr::write_volatile(&mut self.magic, POISON) };
        }
    }

    let tree = Arc::new(PnbBst::<u64, Sentinel>::new());
    const KEYS: u64 = 256;
    const WRITERS: usize = 2;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let writers_done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Two writers churn the same small key space so values retire
        // constantly; the last one to finish releases the readers.
        for t in 0..WRITERS as u64 {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            let writers_done = &writers_done;
            s.spawn(move || {
                let mut session = tree.pin();
                for round in 0..40u64 {
                    for k in 0..KEYS {
                        let _ = session.upsert((k + t) % KEYS, Sentinel::new());
                    }
                    for k in 0..KEYS / 2 {
                        session.delete(&((k * 2 + t + round) % KEYS));
                    }
                    session.refresh();
                }
                if writers_done.fetch_add(1, Ordering::SeqCst) + 1 == WRITERS {
                    stop.store(true, Ordering::SeqCst);
                }
            });
        }
        // Two readers hammer point and range reads until the churn ends;
        // every clone they receive self-checks in `Clone`, and they
        // re-check the returned copy.
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                let mut session = tree.pin();
                let mut rounds = 0u64;
                loop {
                    let last = stop.load(Ordering::SeqCst);
                    for k in 0..KEYS {
                        if let Some(v) = session.get(&k) {
                            assert_eq!(v.magic, GOOD, "poisoned value escaped `get`");
                        }
                    }
                    for (_, v) in session.range(0..KEYS / 4) {
                        assert_eq!(v.magic, GOOD, "poisoned value escaped `range`");
                    }
                    session.refresh();
                    rounds += 1;
                    if last {
                        break; // one full validation pass after quiescence
                    }
                }
                assert!(rounds > 0);
            });
        }
    });
    drain_epochs();
}

/// Thread churn: many short-lived threads each defer garbage and exit
/// without flushing, so `Local::drop` must hand both the garbage bag
/// and the registry slot off lock-free. Nothing may be stranded: all
/// values drain after quiescence and the participant registry does not
/// accumulate dead slots.
#[test]
fn thread_churn_hands_off_bags_and_registry_slots() {
    let live = Arc::new(AtomicI64::new(0));
    let baseline = crossbeam_epoch::registered_participants();
    #[cfg(feature = "stats")]
    let before = pnb_bst::collector_stats();
    const WAVES: u64 = 8;
    const PER_WAVE: u64 = 8;
    {
        let tree = Arc::new(PnbBst::<u64, Counted>::new());
        for wave in 0..WAVES {
            std::thread::scope(|s| {
                for t in 0..PER_WAVE {
                    let tree = Arc::clone(&tree);
                    let live = Arc::clone(&live);
                    s.spawn(move || {
                        let base = (wave * PER_WAVE + t) * 1_000;
                        for i in 0..100 {
                            tree.insert(base + i, Counted::new(&live));
                        }
                        for i in 0..100 {
                            tree.delete(&(base + i));
                        }
                        // Exit with a non-empty local bag: the hand-off
                        // in `Local::drop` is what is under test.
                    });
                }
            });
        }
        drop(tree);
    }
    drain_epochs_until(&live, 0);
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "garbage stranded in exited threads' bags"
    );
    // Every churned thread's registry slot must have been tombstoned and
    // physically unlinked by now (the drain scans the registry on every
    // collection pass). Other tests in this binary run concurrently and
    // pin from their own threads, so allow generous slack — the bound
    // only has to distinguish "bounded live concurrency" from "the 64
    // churned slots were stranded".
    let now = crossbeam_epoch::registered_participants();
    assert!(
        now <= baseline + 48,
        "registry grew from {baseline} to {now}: dead participant slots stranded"
    );
    #[cfg(feature = "stats")]
    {
        let after = pnb_bst::collector_stats();
        assert!(
            after.participants_retired >= before.participants_retired + WAVES * PER_WAVE,
            "expected all {} churned registry slots retired ({} -> {})",
            WAVES * PER_WAVE,
            before.participants_retired,
            after.participants_retired,
        );
    }
}

/// A long-lived pinned session blocks reclamation of everything retired
/// after its pin — until `refresh()` re-pins it, which must let the
/// epoch advance (visible in the collector stats) and the garbage
/// drain, while the session stays fully usable.
#[test]
fn session_refresh_unblocks_epoch_advancement() {
    let live = Arc::new(AtomicI64::new(0));
    let tree: PnbBst<u64, Counted> = PnbBst::new();
    for k in 0..50 {
        tree.insert(k, Counted::new(&live));
    }
    // Settle pre-existing garbage (inserts retire leaf copies) so that
    // exactly the 50 in-tree values remain before the session pins.
    drain_epochs_until(&live, 50);
    assert_eq!(live.load(Ordering::SeqCst), 50);
    let mut session = tree.pin(); // long-lived: pins now
    #[cfg(feature = "stats")]
    let before = pnb_bst::collector_stats();
    std::thread::scope(|s| {
        s.spawn(|| {
            for k in 0..50 {
                tree.delete(&k);
            }
            drain_epochs();
        });
    });
    // Every value (and every leaf copy made by the deletes) was retired
    // after the session's pin: with the session never refreshed, the
    // epoch can advance at most once past its pin, so none of the 50
    // in-tree values may have dropped no matter how hard the other
    // thread pumped the collector.
    assert!(
        live.load(Ordering::SeqCst) >= 50,
        "values freed under a live session pin"
    );
    // Refreshing republishes the session's epoch: collection passes can
    // now walk past the retirements.
    for _ in 0..200 {
        if live.load(Ordering::SeqCst) == 0 {
            break;
        }
        session.refresh();
        session.flush();
        drain_epochs();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "refresh() failed to unblock reclamation"
    );
    #[cfg(feature = "stats")]
    {
        let after = pnb_bst::collector_stats();
        assert!(
            after.advance_successes > before.advance_successes,
            "draining past a refreshed session implies epoch advances"
        );
        assert!(after.bags_freed > before.bags_freed);
    }
    // The refreshed session is still a fully usable view of the tree.
    assert!(session.is_empty());
    assert!(session.insert(7, Counted::new(&live)));
    assert_eq!(session.tree().len(), 1);
}

#[test]
fn string_keys_and_boxed_values() {
    // Non-Copy keys and heap values exercise clone/drop paths everywhere.
    let tree: PnbBst<String, Box<[u8; 64]>> = PnbBst::new();
    for i in 0..200 {
        assert!(tree.insert(format!("key-{i:04}"), Box::new([i as u8; 64])));
    }
    assert_eq!(tree.len(), 200);
    assert_eq!(tree.get(&"key-0042".to_string()).map(|b| b[0]), Some(42));
    // Range scan over string keys is lexicographic.
    let window = tree.range_scan(&"key-0010".to_string(), &"key-0013".to_string());
    let keys: Vec<String> = window.into_iter().map(|(k, _)| k).collect();
    assert_eq!(keys, vec!["key-0010", "key-0011", "key-0012", "key-0013"]);
    for i in (0..200).step_by(2) {
        assert!(tree.delete(&format!("key-{i:04}")));
    }
    assert_eq!(tree.check_invariants(), 100);
}
