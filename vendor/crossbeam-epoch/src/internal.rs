//! The epoch machinery: global state, per-thread participants, guards.
//!
//! Every hot path here — pin, defer, seal, collect, thread exit — is
//! mutex-free: the participant registry is a lock-free intrusive list
//! (`list.rs`) and sealed garbage travels through a lock-free
//! Michael–Scott queue (`queue.rs`). The only blocking primitive in the
//! whole crate is the one-time `OnceLock` initialization of the global
//! singleton, which is off every path after the first pin.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::deferred::{Bag, Deferred};
use crate::list::{List, Node, UNPINNED};
use crate::queue::Queue;
use crate::stats;
use crate::Shared;

/// How many deferred items a local bag accumulates before it is sealed
/// into the global queue and a collection pass is attempted.
const BAG_SEAL_THRESHOLD: usize = 64;

pub(crate) struct Global {
    pub(crate) epoch: AtomicUsize,
    pub(crate) participants: List,
    garbage: Queue,
}

pub(crate) fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: List::new(),
        garbage: Queue::new(),
    })
}

impl Global {
    /// Advance the global epoch if every *live* pinned participant has
    /// observed the current one. Tombstoned participants are skipped —
    /// a thread that died (even one wedged mid-exit with a stale pinned
    /// epoch) can never stall the epoch — and are physically unlinked en
    /// passant, their registry nodes retired through the collector
    /// itself. Returns the (possibly advanced) epoch.
    ///
    /// Caller must be pinned (the registry scan dereferences nodes that
    /// concurrent scanners unlink).
    pub(crate) fn try_advance(&self) -> usize {
        stats::advance_attempt();
        let e = self.epoch.load(Ordering::SeqCst);
        // SAFETY: pinned per this function's contract.
        let caught_up = unsafe {
            self.participants.scan(
                |p| {
                    let pe = p.epoch.load(Ordering::SeqCst);
                    pe == UNPINNED || pe == e
                },
                |node| self.retire_participant(node),
            )
        };
        if !caught_up {
            return e; // a live straggler is still in an older epoch
        }
        // A concurrent advance is fine: compare_exchange keeps the epoch
        // monotone and off-by-one races are conservative.
        if self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            stats::advance_success();
        }
        self.epoch.load(Ordering::SeqCst)
    }

    /// Defer destruction of an unlinked registry node through the
    /// collector (scanners still traversing it are pinned).
    fn retire_participant(&self, node: *mut Node) {
        stats::participant_retired();
        self.seal(vec![Deferred::drop_box(node)]);
    }

    /// Free every sealed bag old enough that no pinned thread can still
    /// reference its contents. Caller must be pinned.
    pub(crate) fn collect(&self) {
        let e = self.try_advance();
        let mut retired_nodes = Vec::new();
        // SAFETY: pinned per this function's contract.
        while let Some(bag) = unsafe { self.garbage.try_pop_ripe(e, &mut retired_nodes) } {
            stats::bag_freed(bag.len());
            for d in bag {
                d.run();
            }
        }
        // Queue nodes retired by the pops become a fresh bag themselves.
        self.seal(retired_nodes);
    }

    /// Seal a bag into the global queue under the current epoch. Caller
    /// must be pinned.
    pub(crate) fn seal(&self, bag: Bag) {
        if bag.is_empty() {
            return;
        }
        stats::bag_sealed();
        let seal = self.epoch.load(Ordering::SeqCst);
        // SAFETY: pinned per this function's contract.
        unsafe { self.garbage.push(seal, bag) };
    }
}

/// Publish the epoch the owner pins in; loop until the published value
/// is stable against a concurrent advance.
fn publish_epoch(node: &Node, g: &Global) {
    loop {
        let e = g.epoch.load(Ordering::SeqCst);
        node.epoch.store(e, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if g.epoch.load(Ordering::SeqCst) == e {
            break;
        }
    }
}

/// Thread-local side of a participant.
struct Local {
    /// This thread's node in the global registry. Valid for the whole
    /// life of the `Local` (only `Local::drop` tombstones it, and only
    /// tombstoned nodes get unlinked and reclaimed).
    node: *const Node,
    guard_count: Cell<usize>,
    bag: RefCell<Bag>,
}

impl Local {
    fn register() -> Local {
        Local {
            node: global().participants.insert(),
            guard_count: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        }
    }

    fn node(&self) -> &Node {
        // SAFETY: see the field invariant on `node`.
        unsafe { &*self.node }
    }

    fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            publish_epoch(self.node(), global());
        }
    }

    fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without matching pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            self.node().epoch.store(UNPINNED, Ordering::SeqCst);
        }
    }

    fn repin(&self) {
        // Only safe when this is the thread's sole guard: a nested guard
        // may rely on the older published epoch.
        if self.guard_count.get() == 1 {
            self.node().epoch.store(UNPINNED, Ordering::SeqCst);
            publish_epoch(self.node(), global());
        }
    }

    fn defer(&self, d: Deferred) {
        let sealed = {
            let mut bag = self.bag.borrow_mut();
            bag.push(d);
            if bag.len() >= BAG_SEAL_THRESHOLD {
                // Replace with a pre-sized bag: one allocation per seal
                // cycle instead of log₂(threshold) growth reallocations
                // — keeps steady-state defer traffic nearly alloc-free.
                Some(std::mem::replace(
                    &mut *bag,
                    Vec::with_capacity(BAG_SEAL_THRESHOLD),
                ))
            } else {
                None
            }
        };
        // The borrow is released before collecting: destructors run by
        // `collect` may themselves defer (re-entrancy is fine, locks
        // could not be held here anyway — there are none).
        if let Some(sealed) = sealed {
            let g = global();
            g.seal(sealed);
            g.collect();
        }
    }

    fn flush(&self) {
        let sealed = std::mem::take(&mut *self.bag.borrow_mut());
        let g = global();
        g.seal(sealed);
        g.collect();
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit, fully lock-free: hand any remaining garbage to
        // the global queue under a manual self-pin (the queue push
        // dereferences shared nodes, so it needs epoch protection; no
        // `Guard` can be built here — the thread-local is mid-drop),
        // then unpin and tombstone the registry slot. Physical unlinking
        // and the node's reclamation are left to later scans.
        let g = global();
        let bag = std::mem::take(&mut *self.bag.borrow_mut());
        if !bag.is_empty() {
            publish_epoch(self.node(), g);
            g.seal(bag);
        }
        self.node().epoch.store(UNPINNED, Ordering::SeqCst);
        // SAFETY: our own registered node, deleted exactly once.
        unsafe { g.participants.delete(self.node) };
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// A pinned-epoch guard. While any guard is alive on a thread, memory
/// retired after the pin cannot be freed.
pub struct Guard {
    protected: bool,
    /// `Guard` is tied to the thread whose participant it pinned.
    _not_send: PhantomData<*mut ()>,
}

/// Pin the current thread and return the guard.
pub fn pin() -> Guard {
    LOCAL.with(|l| l.pin());
    Guard {
        protected: true,
        _not_send: PhantomData,
    }
}

struct GuardCell(Guard);
// SAFETY: the unprotected guard carries no per-thread state; every
// operation on it is thread-agnostic (defers run immediately, flush is a
// no-op on it).
unsafe impl Sync for GuardCell {}

static UNPROTECTED_GUARD: GuardCell = GuardCell(Guard {
    protected: false,
    _not_send: PhantomData,
});

/// A dummy guard for contexts where the caller guarantees exclusive
/// access (e.g. `Drop` with `&mut self`). Deferred destructions through
/// it run immediately.
///
/// # Safety
///
/// The caller must guarantee no other thread can access the data being
/// read or destroyed through this guard.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED_GUARD.0
}

impl Guard {
    /// Defer destruction of the heap allocation behind `ptr` (a
    /// `Box<T>`-owned allocation) until no pinned thread can reference it.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live `Box<T>` allocation that is no longer
    /// reachable by threads pinning after this call, and must be retired
    /// at most once.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        debug_assert!(!raw.is_null(), "defer_destroy(null)");
        let d = Deferred::drop_box(raw);
        if self.protected {
            LOCAL.with(|l| l.defer(d));
        } else {
            d.run();
        }
    }

    /// Defer reclamation of `ptr` through a typed *recycle* hook: once
    /// the epoch protocol proves no pinned thread can still reference
    /// the allocation, `recycle(ptr)` runs — on whichever thread
    /// performs the collection pass — instead of a `Box` drop. Arena
    /// allocators use this to route ripe memory back into their
    /// per-thread pools rather than the global allocator.
    ///
    /// On the [`unprotected`] guard the hook runs immediately (the
    /// caller vouches for exclusive access, as with `defer_destroy`).
    ///
    /// # Safety
    ///
    /// Same contract as [`defer_destroy`](Guard::defer_destroy): `ptr`
    /// must point to a live allocation no longer reachable by threads
    /// pinning after this call, retired at most once. Additionally
    /// `recycle` must fully dispose of the allocation (run the
    /// destructor and free or pool the memory) and be safe to call from
    /// any thread.
    pub unsafe fn defer_recycle<T>(&self, ptr: Shared<'_, T>, recycle: unsafe fn(*mut T)) {
        let raw = ptr.as_raw() as *mut T;
        debug_assert!(!raw.is_null(), "defer_recycle(null)");
        let d = Deferred::recycle(raw, recycle);
        if self.protected {
            LOCAL.with(|l| l.defer(d));
        } else {
            d.run();
        }
    }

    /// Seal this thread's garbage into the global queue and attempt a
    /// collection pass.
    pub fn flush(&self) {
        if self.protected {
            LOCAL.with(|l| l.flush());
        }
    }

    /// Unpin and immediately re-pin the current thread (upstream
    /// `Guard::repin`): republishes the participant's epoch so the
    /// collector can advance past garbage retired since the original
    /// pin. A no-op when other guards on this thread still hold an older
    /// pin (their protection must not be weakened), and on the
    /// unprotected guard.
    pub fn repin(&mut self) {
        if self.protected {
            LOCAL.with(|l| l.repin());
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.protected {
            LOCAL.with(|l| l.unpin());
        }
    }
}

/// The number of participants currently physically present in the
/// registry (live, non-tombstoned). Diagnostic: the value is inherently
/// racy under concurrent registration/exit; it is exact once the process
/// is quiescent. Used by the reclamation test battery to prove that
/// thread churn does not strand registry slots.
pub fn registered_participants() -> usize {
    let _guard = pin();
    let mut n = 0usize;
    let g = global();
    // SAFETY: pinned just above.
    unsafe {
        g.participants.scan(
            |_| {
                n += 1;
                true
            },
            |node| g.retire_participant(node),
        )
    };
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the straggler scan: a participant that died
    /// with a stale *pinned* epoch (a thread wedged mid-exit — the
    /// pre-rewrite shim stalled forever on this) must stop blocking
    /// epoch advancement the moment it is tombstoned.
    #[test]
    fn tombstoned_straggler_does_not_wedge_advancement() {
        let g = global();
        let guard = pin();
        // Forge a wedged participant: registered, pinned at the current
        // epoch, never unpinned.
        let node = g.participants.insert();
        let e = g.epoch.load(Ordering::SeqCst);
        unsafe { (*node).epoch.store(e, Ordering::SeqCst) };

        // While it is live it is a straggler: the epoch can advance at
        // most once past its pin, no matter how often we try. (Our own
        // `guard` repins below so *we* never become the straggler.)
        let mut local_guard = guard;
        for _ in 0..64 {
            local_guard.repin();
            g.try_advance();
        }
        assert!(
            g.epoch.load(Ordering::SeqCst) <= e + 1,
            "a live pinned straggler must cap advancement at one step"
        );

        // Tombstone it (what `Local::drop` does on thread exit) — the
        // scan must now skip it and advancement must resume.
        unsafe { g.participants.delete(node) };
        let mut advanced = false;
        for i in 0..2000 {
            local_guard.repin();
            if g.try_advance() >= e + 2 {
                advanced = true;
                break;
            }
            // Other tests in this binary pin transiently; back off so
            // their guards get a chance to drop.
            if i > 100 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            } else {
                std::thread::yield_now();
            }
        }
        assert!(
            advanced,
            "tombstoned participant still wedges epoch advancement"
        );
    }

    #[test]
    fn registered_participants_counts_this_thread() {
        assert!(registered_participants() >= 1);
    }
}
