//! The lock-free global garbage queue.
//!
//! A Michael–Scott FIFO queue of sealed bags, built on the shim's own
//! [`Atomic`]/[`Shared`] words. Each node carries the epoch its bag was
//! sealed in; [`Queue::try_pop_ripe`] pops the front bag only once the
//! global epoch has advanced at least two steps past that seal, so the
//! ripeness check and the dequeue are one protocol.
//!
//! Reclamation of the queue's *own* nodes goes through the epoch
//! collector as well: the winner of a pop hands the retired dummy node
//! back to the caller as a [`Deferred`], and the caller seals those into
//! a fresh bag. Every accessor (pusher or popper) must therefore be
//! pinned — that is what keeps a lagging thread's `tail`/`head` snapshot
//! dereferenceable.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering::SeqCst;

use crate::atomic::{Atomic, Shared};
use crate::deferred::{Bag, Deferred};
use crate::Guard;

/// One queue link: a bag sealed at `seal`, or the dummy (bag `None`).
struct QNode {
    /// Global epoch current when the bag was sealed. Immutable.
    seal: usize,
    /// The garbage. Taken (exactly once) by the winner of the pop CAS.
    bag: UnsafeCell<Option<Bag>>,
    next: Atomic<QNode>,
}

/// Michael–Scott queue of sealed garbage bags.
pub(crate) struct Queue {
    head: Atomic<QNode>,
    tail: Atomic<QNode>,
}

// SAFETY: the queue is a pair of atomic words plus heap nodes whose
// `bag` cell is accessed only by the single winner of the pop CAS (and
// whose `seal` is immutable); bags themselves are `Send` (`Deferred` is).
unsafe impl Send for Queue {}
unsafe impl Sync for Queue {}

/// The guard parameter on [`Atomic`] is a lifetime witness; inside the
/// collector the pinned-ness obligation is carried by the *callers*
/// (documented on each method), so internal loads borrow the static
/// unprotected guard as the witness. Nothing is ever deferred through it.
fn witness() -> &'static Guard {
    // SAFETY: used purely as a lifetime token for `Atomic` accesses whose
    // protection is established by the caller's pin.
    unsafe { crate::unprotected() }
}

impl Queue {
    /// A new queue holding only the initial dummy node.
    pub(crate) fn new() -> Queue {
        let dummy: *const QNode = Box::into_raw(Box::new(QNode {
            seal: 0,
            bag: UnsafeCell::new(None),
            next: Atomic::null(),
        }));
        let s = Shared::from(dummy);
        Queue {
            head: Atomic::from(s),
            tail: Atomic::from(s),
        }
    }

    /// Append a bag sealed at `seal`. Lock-free (one allocation, then
    /// the classic swing-tail CAS loop).
    ///
    /// # Safety
    ///
    /// The calling thread must be pinned (or otherwise guaranteed
    /// exclusive, e.g. during `Local::drop` under a manual self-pin):
    /// the loop dereferences `tail` snapshots that a concurrent pop may
    /// retire.
    pub(crate) unsafe fn push(&self, seal: usize, bag: Bag) {
        let g = witness();
        let node = Shared::from(Box::into_raw(Box::new(QNode {
            seal,
            bag: UnsafeCell::new(Some(bag)),
            next: Atomic::null(),
        })) as *const QNode);
        loop {
            let tail = self.tail.load(SeqCst, g);
            let tail_ref = tail.deref();
            let next = tail_ref.next.load(SeqCst, g);
            if !next.is_null() {
                // Tail is lagging: help swing it forward and retry.
                let _ = self.tail.compare_exchange(tail, next, SeqCst, SeqCst, g);
                continue;
            }
            if tail_ref
                .next
                .compare_exchange(Shared::null(), node, SeqCst, SeqCst, g)
                .is_ok()
            {
                let _ = self.tail.compare_exchange(tail, node, SeqCst, SeqCst, g);
                return;
            }
        }
    }

    /// Pop the front bag if it is ripe under `epoch` (sealed at least
    /// two epochs ago). Returns `None` when the queue is empty or the
    /// front bag is still protected. The dummy node retired by a
    /// successful pop is appended to `retired` as a [`Deferred`]; the
    /// caller must seal those through the collector.
    ///
    /// # Safety
    ///
    /// The calling thread must be pinned (see [`Queue::push`]).
    pub(crate) unsafe fn try_pop_ripe(
        &self,
        epoch: usize,
        retired: &mut Vec<Deferred>,
    ) -> Option<Bag> {
        let g = witness();
        loop {
            let head = self.head.load(SeqCst, g);
            let next = head.deref().next.load(SeqCst, g);
            if next.is_null() {
                return None; // dummy only: empty
            }
            let front = next.deref();
            // `seal` is immutable; reading it before winning the pop is
            // safe under the pin.
            if front.seal + 2 > epoch {
                return None; // not ripe yet (FIFO: later bags can't be riper by much)
            }
            // Keep tail out of the way of the node we are about to retire.
            let tail = self.tail.load(SeqCst, g);
            if tail == head {
                let _ = self.tail.compare_exchange(tail, next, SeqCst, SeqCst, g);
            }
            if self
                .head
                .compare_exchange(head, next, SeqCst, SeqCst, g)
                .is_ok()
            {
                // We won: `front` is the new dummy and its bag is ours;
                // the old dummy is unreachable and retires through the
                // collector (a lagging peer may still dereference it).
                let bag = (*front.bag.get()).take().expect("bag taken twice");
                retired.push(Deferred::drop_box(head.as_raw() as *mut QNode));
                return Some(bag);
            }
        }
    }
}

impl Drop for Queue {
    fn drop(&mut self) {
        // `&mut self`: exclusive access — walk the chain, free every
        // node and run whatever bags never ripened. (The process-global
        // queue lives in a static and never drops; this path is for
        // locally-owned queues, e.g. in tests.)
        let g = witness();
        let mut cur = self.head.load(SeqCst, g);
        while !cur.is_null() {
            // SAFETY: exclusive owner; nodes form a private chain.
            let node = unsafe { Box::from_raw(cur.as_raw() as *mut QNode) };
            let QNode { seal: _, bag, next } = *node;
            cur = next.load(SeqCst, g);
            if let Some(b) = bag.into_inner() {
                for d in b {
                    d.run();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_deferred(counter: &'static AtomicUsize) -> Deferred {
        struct Bump(&'static AtomicUsize);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Deferred::drop_box(Box::into_raw(Box::new(Bump(counter))))
    }

    #[test]
    fn ripeness_gates_the_pop() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        let q = Queue::new();
        let _pin = crate::pin(); // satisfy the pinned-caller contract
        let mut retired = Vec::new();
        unsafe {
            q.push(5, vec![counting_deferred(&DROPS)]);
            // Epochs 5 and 6: the bag sealed at 5 is still protected.
            assert!(q.try_pop_ripe(5, &mut retired).is_none());
            assert!(q.try_pop_ripe(6, &mut retired).is_none());
            // Epoch 7 = seal + 2: ripe.
            let bag = q.try_pop_ripe(7, &mut retired).expect("ripe bag");
            for d in bag {
                d.run();
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        assert_eq!(retired.len(), 1, "old dummy retired through the caller");
        for d in retired {
            d.run();
        }
        // Queue is empty again.
        let mut retired = Vec::new();
        assert!(unsafe { q.try_pop_ripe(100, &mut retired) }.is_none());
    }

    #[test]
    fn fifo_order_and_concurrent_pushes() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        let q = std::sync::Arc::new(Queue::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    let _pin = crate::pin();
                    for i in 0..50usize {
                        unsafe { q.push(i, vec![counting_deferred(&DROPS)]) };
                    }
                });
            }
        });
        let _pin = crate::pin();
        let mut retired = Vec::new();
        let mut popped = 0;
        while let Some(bag) = unsafe { q.try_pop_ripe(usize::MAX - 2, &mut retired) } {
            popped += 1;
            for d in bag {
                d.run();
            }
        }
        assert_eq!(popped, 200);
        assert_eq!(DROPS.load(Ordering::SeqCst), 200);
        assert_eq!(retired.len(), 200);
        for d in retired {
            d.run();
        }
    }
}
