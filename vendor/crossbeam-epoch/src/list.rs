//! The lock-free intrusive participant registry.
//!
//! A singly-linked list of [`Node`]s with three operations, none of
//! which ever takes a lock:
//!
//! * **insert at head** — one CAS loop on `head` (thread registration);
//! * **logical delete** — set the tombstone tag bit on the node's *own*
//!   `next` word (thread exit). Tagging the node's own link is the
//!   Harris trick: it simultaneously marks the node dead *and* freezes
//!   its outgoing pointer, so no concurrent unlink can splice a node
//!   *after* a dying predecessor (the unlink CAS expects an untagged
//!   word and fails);
//! * **physical unlink during scans** — `try_advance` steps over
//!   tombstoned nodes and CASes them out of the chain en passant; the
//!   single winner of that CAS hands the node to the garbage queue.
//!
//! Invariants:
//!
//! * nodes are inserted at the head only and never re-inserted, so each
//!   node has exactly one in-pointer (its predecessor's `next`, or
//!   `head`) — at most one unlink CAS can ever succeed per node;
//! * a tombstoned node's `next` word is frozen (every CAS on it expects
//!   tag 0), so the chain suffix read through a dead node is immutable
//!   and traversal past it stays sound;
//! * unlinked nodes are freed **through the epoch collector itself**, so
//!   a scanner that still holds a pointer to one (scanners are pinned)
//!   can keep reading it until quiescence.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel meaning "this participant is not pinned".
pub(crate) const UNPINNED: usize = usize::MAX;

/// Tag bit on a node's own `next` word marking the node tombstoned.
const TOMB: usize = 1;

/// One participant: the epoch its owner thread pinned in (or
/// [`UNPINNED`]) and the intrusive link.
pub(crate) struct Node {
    /// Epoch the owning thread pinned in, or [`UNPINNED`].
    pub(crate) epoch: AtomicUsize,
    /// Tagged pointer to the next node; tag [`TOMB`] ⇒ this node is
    /// logically deleted and this word is frozen.
    next: AtomicUsize,
}

/// Lock-free intrusive list of participants.
pub(crate) struct List {
    /// Untagged pointer to the first node (0 = empty). Only ever
    /// changed by head-insertions and head-unlinks.
    head: AtomicUsize,
}

impl List {
    pub(crate) const fn new() -> List {
        List {
            head: AtomicUsize::new(0),
        }
    }

    /// Register a new participant (lock-free: one allocation + a CAS
    /// loop on `head`). The returned node stays valid at least until
    /// [`List::delete`] tombstones it *and* a later scan unlinks it and
    /// the epoch collector reclaims it.
    pub(crate) fn insert(&self) -> *const Node {
        let node = Box::into_raw(Box::new(Node {
            epoch: AtomicUsize::new(UNPINNED),
            next: AtomicUsize::new(0),
        }));
        loop {
            let head = self.head.load(Ordering::SeqCst);
            // SAFETY: `node` is unpublished — we are its only accessor.
            unsafe { (*node).next.store(head, Ordering::SeqCst) };
            if self
                .head
                .compare_exchange(head, node as usize, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return node;
            }
        }
    }

    /// Logically delete a participant: set the tombstone tag on its own
    /// `next` word. Lock-free, never blocks, never frees — physical
    /// unlinking happens inside later [`List::scan`]s.
    ///
    /// # Safety
    ///
    /// `node` must have been returned by [`List::insert`] on this list
    /// and not have been deleted before (only the owning thread deletes,
    /// exactly once, on exit).
    pub(crate) unsafe fn delete(&self, node: *const Node) {
        let node = &*node;
        let mut next = node.next.load(Ordering::SeqCst);
        while next & TOMB == 0 {
            match node
                .next
                .compare_exchange(next, next | TOMB, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => next = actual,
            }
        }
    }

    /// Walk every live participant once. `visit` is called for each
    /// non-tombstoned node; returning `false` aborts the scan (a
    /// straggler was found) and `scan` returns `false`. Tombstoned
    /// nodes are *skipped* — they can never veto epoch advancement — and
    /// opportunistically unlinked: the winner of the unlink CAS passes
    /// the node to `reclaim` (which must defer its destruction through
    /// the epoch collector).
    ///
    /// The scan is a single pass: a failed unlink CAS (either the
    /// predecessor died or another scanner already unlinked the node)
    /// just steps over the tombstone and leaves the cleanup to a later
    /// scan.
    ///
    /// # Safety
    ///
    /// The calling thread must be pinned: traversal dereferences nodes
    /// that concurrent scanners may unlink, and only the epoch protocol
    /// keeps those allocations alive.
    pub(crate) unsafe fn scan(
        &self,
        mut visit: impl FnMut(&Node) -> bool,
        mut reclaim: impl FnMut(*mut Node),
    ) -> bool {
        let mut pred: &AtomicUsize = &self.head;
        let mut cur = pred.load(Ordering::SeqCst) & !TOMB;
        loop {
            if cur == 0 {
                return true;
            }
            let cur_ref = &*(cur as *const Node);
            let next = cur_ref.next.load(Ordering::SeqCst);
            if next & TOMB != 0 {
                // Tombstoned: try to splice it out. The expected value is
                // untagged, so the CAS can only succeed while `pred` is
                // still live and still points at `cur` — the one
                // in-pointer transitions away from `cur` at most once.
                if pred
                    .compare_exchange(cur, next & !TOMB, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    reclaim(cur as *mut Node);
                }
                // Won or lost, the successor chain continues at the
                // frozen `next`; `pred` is kept (possibly stale — then
                // further unlink attempts through it fail harmlessly).
                cur = next & !TOMB;
            } else {
                if !visit(cur_ref) {
                    return false;
                }
                pred = &cur_ref.next;
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_ptrs(list: &List) -> Vec<*const Node> {
        let mut v = Vec::new();
        // SAFETY: single-threaded test — nothing is unlinked concurrently.
        unsafe {
            list.scan(
                |n| {
                    v.push(n as *const Node);
                    true
                },
                |_| {},
            )
        };
        v
    }

    #[test]
    fn insert_is_lifo_and_delete_unlinks() {
        let list = List::new();
        let a = list.insert();
        let b = list.insert();
        let c = list.insert();
        assert_eq!(collect_ptrs(&list), vec![c, b, a]);

        unsafe { list.delete(b) };
        // First scan skips + unlinks the tombstone.
        let mut reclaimed = Vec::new();
        let done = unsafe { list.scan(|_| true, |n| reclaimed.push(n)) };
        assert!(done);
        assert_eq!(reclaimed, vec![b as *mut Node]);
        assert_eq!(collect_ptrs(&list), vec![c, a]);
        // The winner owns the node now.
        drop(unsafe { Box::from_raw(b as *mut Node) });

        // A second scan finds nothing more to reclaim.
        let mut reclaimed2 = Vec::new();
        unsafe { list.scan(|_| true, |n| reclaimed2.push(n)) };
        assert!(reclaimed2.is_empty());

        for n in [a, c] {
            unsafe { list.delete(n) };
        }
        unsafe { list.scan(|_| true, |n| drop(Box::from_raw(n))) };
        assert!(collect_ptrs(&list).is_empty());
    }

    #[test]
    fn veto_stops_the_scan() {
        let list = List::new();
        let a = list.insert();
        unsafe { (*(a as *mut Node)).epoch.store(3, Ordering::SeqCst) };
        let done = unsafe { list.scan(|n| n.epoch.load(Ordering::SeqCst) == UNPINNED, |_| {}) };
        assert!(!done);
        unsafe { list.delete(a) };
        unsafe { list.scan(|_| true, |n| drop(Box::from_raw(n))) };
    }

    #[test]
    fn concurrent_register_and_exit_strands_nothing() {
        use std::sync::Arc;
        let list = Arc::new(List::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let list = Arc::clone(&list);
                s.spawn(move || {
                    for _ in 0..200 {
                        let n = list.insert();
                        unsafe { list.delete(n) };
                    }
                });
            }
        });
        // Single-threaded now: every node is tombstoned; scans unlink and
        // may free directly (no concurrent readers).
        for _ in 0..4 {
            unsafe { list.scan(|_| true, |n| drop(Box::from_raw(n))) };
        }
        assert!(collect_ptrs(&list).is_empty());
    }
}
