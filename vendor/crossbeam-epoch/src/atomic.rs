//! Tagged atomic pointers: [`Atomic`], [`Shared`] and the
//! [`CompareExchangeError`] of a failed CAS.
//!
//! These are plain words — an `Atomic<T>` does not own its pointee; the
//! obligations of dereferencing live on the unsafe [`Shared::deref`].
//! The lock-free structures inside this crate (the participant list and
//! the sealed-bag queue) are built from the very same primitives the
//! trees above it use.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

#[inline]
fn low_bits<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

/// A tagged shared pointer valid for the lifetime of a guard.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p}, tag {})", self.as_raw(), self.tag())
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn from_data(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// The untagged raw pointer.
    #[inline]
    pub fn as_raw(&self) -> *const T {
        (self.data & !low_bits::<T>()) as *const T
    }

    /// The tag stored in the pointer's low (alignment) bits.
    #[inline]
    pub fn tag(&self) -> usize {
        self.data & low_bits::<T>()
    }

    /// The same pointer with the given tag.
    #[inline]
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        Shared::from_data((self.data & !low_bits::<T>()) | (tag & low_bits::<T>()))
    }

    /// Whether the (untagged) pointer is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.as_raw().is_null()
    }

    /// Dereference the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to memory kept alive for
    /// `'g` (reachable under the pinning guard, or owned by the caller).
    #[inline]
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(raw: *const T) -> Self {
        debug_assert_eq!(
            raw as usize & low_bits::<T>(),
            0,
            "raw pointer carries tag bits"
        );
        Shared::from_data(raw as usize)
    }
}

/// An atomic tagged pointer to `T`. Does not own the pointee.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: Atomic is a word of tagged-pointer bits; sharing the *word* is
// always safe — dereferencing the pointee is what carries obligations,
// and those live on the unsafe `Shared::deref`.
unsafe impl<T> Send for Atomic<T> {}
unsafe impl<T> Sync for Atomic<T> {}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Load the current value.
    #[inline]
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g crate::Guard) -> Shared<'g, T> {
        Shared::from_data(self.data.load(ord))
    }

    /// Store a new value.
    #[inline]
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.data, ord);
    }

    /// Compare-and-exchange on the full tagged word.
    #[inline]
    pub fn compare_exchange<'g>(
        &self,
        current: Shared<'_, T>,
        new: Shared<'_, T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g crate::Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T>> {
        match self
            .data
            .compare_exchange(current.data, new.data, success, failure)
        {
            Ok(prev) => Ok(Shared::from_data(prev)),
            Err(actual) => Err(CompareExchangeError {
                current: Shared::from_data(actual),
            }),
        }
    }
}

impl<T> From<Shared<'_, T>> for Atomic<T> {
    fn from(s: Shared<'_, T>) -> Self {
        Atomic {
            data: AtomicUsize::new(s.data),
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:#x})", self.data.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin;

    #[test]
    fn tag_roundtrip() {
        let b = Box::new(0u64);
        let raw: *const u64 = &*b;
        let s = Shared::from(raw);
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert_eq!(t.as_raw(), raw);
        assert_eq!(t.with_tag(0), s);
    }

    #[test]
    fn cas_on_tagged_word() {
        let b = Box::new(7u64);
        let raw: *const u64 = &*b;
        let a: Atomic<u64> = Atomic::null();
        let g = pin();
        assert!(a
            .compare_exchange(
                Shared::null(),
                Shared::from(raw).with_tag(1),
                Ordering::SeqCst,
                Ordering::SeqCst,
                &g
            )
            .is_ok());
        let cur = a.load(Ordering::SeqCst, &g);
        assert_eq!(cur.tag(), 1);
        assert_eq!(cur.as_raw(), raw);
        // Untagged expected value must fail against the tagged word.
        let err = a
            .compare_exchange(
                Shared::from(raw),
                Shared::null(),
                Ordering::SeqCst,
                Ordering::SeqCst,
                &g,
            )
            .unwrap_err();
        assert_eq!(err.current.tag(), 1);
    }
}
