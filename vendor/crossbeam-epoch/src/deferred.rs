//! Type-erased deferred destructions.
//!
//! A [`Deferred`] is the unit of garbage: a `(data, call)` pair erased
//! from a concrete `Box<T>` allocation. Bags of these flow through the
//! lock-free global queue (`queue.rs`) until the epoch protocol proves
//! no reader can still hold the pointer, at which point [`Deferred::run`]
//! executes the destructor.

/// A type-erased deferred destruction of one `Box<T>` allocation.
pub(crate) struct Deferred {
    data: *mut (),
    call: unsafe fn(*mut ()),
}

// SAFETY: deferred destructions may be executed by any thread once the
// epoch protocol proves no reader can still hold the pointer. The data
// structures built on this shim declare their own `Send`/`Sync` bounds
// (values crossing threads require `Send + Sync` at the container level).
unsafe impl Send for Deferred {}

impl Deferred {
    /// Erase a `Box<T>`-owned allocation into a deferred destruction.
    ///
    /// The returned value takes logical ownership: exactly one `run`
    /// must eventually execute (the queue guarantees this — a bag is
    /// popped by exactly one collector).
    pub(crate) fn drop_box<T>(ptr: *mut T) -> Deferred {
        unsafe fn call<T>(p: *mut ()) {
            drop(Box::from_raw(p as *mut T));
        }
        Deferred {
            data: ptr as *mut (),
            call: call::<T>,
        }
    }

    /// Execute the destruction.
    pub(crate) fn run(self) {
        // SAFETY: constructed from a matching (data, call) pair.
        unsafe { (self.call)(self.data) }
    }
}

/// A sealed garbage bag travelling through the global queue.
pub(crate) type Bag = Vec<Deferred>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drop_box_runs_the_destructor_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        let d = Deferred::drop_box(Box::into_raw(Box::new(D)));
        assert_eq!(DROPS.load(Ordering::SeqCst), before);
        d.run();
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }
}
