//! Type-erased deferred destructions.
//!
//! A [`Deferred`] is the unit of garbage: a `(data, call)` pair erased
//! from a concrete `Box<T>` allocation. Bags of these flow through the
//! lock-free global queue (`queue.rs`) until the epoch protocol proves
//! no reader can still hold the pointer, at which point [`Deferred::run`]
//! executes the destructor.

/// A type-erased deferred reclamation of one allocation: either a plain
/// `Box<T>` drop, or a caller-provided *recycle* function (used by
/// arena-style allocators to route ripe memory back into a pool instead
/// of the global allocator).
pub(crate) struct Deferred {
    data: *mut (),
    /// Recycle hook (type-erased `unsafe fn(*mut T)`); null for the
    /// plain `drop_box` flavour.
    aux: *const (),
    call: unsafe fn(*mut (), *const ()),
}

// SAFETY: deferred destructions may be executed by any thread once the
// epoch protocol proves no reader can still hold the pointer. The data
// structures built on this shim declare their own `Send`/`Sync` bounds
// (values crossing threads require `Send + Sync` at the container level).
unsafe impl Send for Deferred {}

impl Deferred {
    /// Erase a `Box<T>`-owned allocation into a deferred destruction.
    ///
    /// The returned value takes logical ownership: exactly one `run`
    /// must eventually execute (the queue guarantees this — a bag is
    /// popped by exactly one collector).
    pub(crate) fn drop_box<T>(ptr: *mut T) -> Deferred {
        unsafe fn call<T>(p: *mut (), _aux: *const ()) {
            drop(Box::from_raw(p as *mut T));
        }
        Deferred {
            data: ptr as *mut (),
            aux: std::ptr::null(),
            call: call::<T>,
        }
    }

    /// Erase an allocation plus a typed recycle function: when the epoch
    /// protocol proves the memory unreachable, `recycle(ptr)` runs (on
    /// whichever thread performs the collection pass) instead of a
    /// `Box` drop. The function must fully dispose of the allocation
    /// (run the destructor and free or pool the memory).
    pub(crate) fn recycle<T>(ptr: *mut T, recycle: unsafe fn(*mut T)) -> Deferred {
        unsafe fn call<T>(p: *mut (), aux: *const ()) {
            // SAFETY: `aux` was produced from exactly this fn-pointer
            // type in `Deferred::recycle::<T>` below; pointer-sized fn
            // pointers round-trip through `*const ()`.
            let f: unsafe fn(*mut T) = std::mem::transmute(aux);
            f(p as *mut T);
        }
        Deferred {
            data: ptr as *mut (),
            aux: recycle as *const (),
            call: call::<T>,
        }
    }

    /// Execute the destruction.
    pub(crate) fn run(self) {
        // SAFETY: constructed from a matching (data, aux, call) triple.
        unsafe { (self.call)(self.data, self.aux) }
    }
}

/// A sealed garbage bag travelling through the global queue.
pub(crate) type Bag = Vec<Deferred>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drop_box_runs_the_destructor_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let before = DROPS.load(Ordering::SeqCst);
        let d = Deferred::drop_box(Box::into_raw(Box::new(D)));
        assert_eq!(DROPS.load(Ordering::SeqCst), before);
        d.run();
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn recycle_runs_the_hook_instead_of_dropping() {
        static RECYCLED: AtomicUsize = AtomicUsize::new(0);
        unsafe fn hook(p: *mut u64) {
            RECYCLED.fetch_add(unsafe { *p } as usize, Ordering::SeqCst);
            drop(unsafe { Box::from_raw(p) });
        }
        let before = RECYCLED.load(Ordering::SeqCst);
        let d = Deferred::recycle(Box::into_raw(Box::new(7u64)), hook);
        assert_eq!(RECYCLED.load(Ordering::SeqCst), before);
        d.run();
        assert_eq!(RECYCLED.load(Ordering::SeqCst), before + 7);
    }
}
