//! Offline shim for `crossbeam-epoch`: a **lock-free** epoch-based
//! memory reclamation scheme exposing the subset of the upstream API
//! this workspace uses.
//!
//! The scheme is the classic three-epoch design:
//!
//! * a global epoch counter;
//! * per-thread participants that record the epoch they pinned in;
//! * garbage bags sealed with the epoch current at defer time, freed only
//!   once the global epoch has advanced at least two steps past the seal
//!   (at which point no pinned thread can still hold a reference);
//! * the global epoch advances only when every currently-pinned live
//!   participant has caught up to it, so a long-lived [`Guard`] (e.g. a
//!   tree snapshot) blocks reclamation of everything retired after its
//!   pin — which is exactly the protection it needs.
//!
//! Unlike its pre-rewrite incarnation (one global `Mutex` around the
//! participant registry and another around a garbage `VecDeque`), every
//! hot path is mutex-free:
//!
//! * the participant registry is a **lock-free intrusive list**
//!   (`list.rs`): registration is a head-insert CAS, thread exit is a
//!   tombstone bit on the node's own link, and physical unlinking
//!   happens en passant during `try_advance` scans — a thread never
//!   takes a lock to enter or leave;
//! * sealed garbage travels through a **Michael–Scott lock-free queue**
//!   (`queue.rs`) built on this crate's own [`Atomic`]/[`Shared`]
//!   words, whose retired link nodes are recycled through the epoch
//!   protocol itself;
//! * tombstoned participants can never veto epoch advancement, so a
//!   thread that dies mid-exit cannot wedge collection.
//!
//! Deviations from upstream, all intentional simplifications:
//!
//! * `defer_destroy` on the [`unprotected`] guard destroys immediately
//!   (upstream documents the same behaviour);
//! * no `Owned`, `Collector` or `LocalHandle` types — this workspace
//!   does not use them;
//! * with the `stats` feature, process-global collector counters
//!   ([`collector_stats`]) record bags sealed/freed and epoch-advance
//!   attempts/successes (upstream has no such hook).

mod atomic;
mod deferred;
mod internal;
mod list;
mod queue;
mod stats;

pub use atomic::{Atomic, CompareExchangeError, Shared};
pub use internal::{pin, registered_participants, unprotected, Guard};
#[cfg(feature = "stats")]
pub use stats::{collector_stats, CollectorStats};
pub use std::sync::atomic::Ordering as MemoryOrdering;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn deferred_destruction_runs_after_quiescence() {
        static LIVE: AtomicI64 = AtomicI64::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        for _ in 0..100 {
            LIVE.fetch_add(1, Ordering::SeqCst);
            let p = Box::into_raw(Box::new(Tracked));
            let g = pin();
            unsafe { g.defer_destroy(Shared::from(p as *const Tracked)) };
        }
        // Other tests in this binary may hold pins concurrently (which
        // legitimately stalls advancement), so drain with retries.
        for _ in 0..2000 {
            if LIVE.load(Ordering::SeqCst) == 0 {
                break;
            }
            pin().flush();
            std::thread::yield_now();
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "garbage not reclaimed");
    }

    #[test]
    fn pinned_guard_blocks_reclamation() {
        static LIVE2: AtomicI64 = AtomicI64::new(0);
        struct Tracked2;
        impl Drop for Tracked2 {
            fn drop(&mut self) {
                LIVE2.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let held = pin();
        std::thread::scope(|s| {
            s.spawn(|| {
                LIVE2.fetch_add(1, Ordering::SeqCst);
                let p = Box::into_raw(Box::new(Tracked2));
                let g = pin();
                unsafe { g.defer_destroy(Shared::from(p as *const Tracked2)) };
                drop(g);
                for _ in 0..64 {
                    pin().flush();
                }
                // The outer thread is still pinned: at most one epoch of
                // progress can have happened since its pin, so the value
                // must still be alive.
                assert_eq!(LIVE2.load(Ordering::SeqCst), 1, "freed under a live pin");
            })
            .join()
            .unwrap();
        });
        drop(held);
        for _ in 0..2000 {
            if LIVE2.load(Ordering::SeqCst) == 0 {
                break;
            }
            pin().flush();
            std::thread::yield_now();
        }
        assert_eq!(LIVE2.load(Ordering::SeqCst), 0);
    }

    /// `repin` on a nested guard must be a no-op: the outer guard's
    /// older pin must keep protecting everything retired since it.
    #[test]
    fn repin_is_a_noop_under_a_nested_guard() {
        static LIVE3: AtomicI64 = AtomicI64::new(0);
        struct Tracked3;
        impl Drop for Tracked3 {
            fn drop(&mut self) {
                LIVE3.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let outer = pin();
        let mut inner = pin(); // nested: guard_count == 2
        std::thread::scope(|s| {
            s.spawn(|| {
                LIVE3.fetch_add(1, Ordering::SeqCst);
                let p = Box::into_raw(Box::new(Tracked3));
                let g = pin();
                unsafe { g.defer_destroy(Shared::from(p as *const Tracked3)) };
                drop(g);
                pin().flush();
            })
            .join()
            .unwrap();
        });
        // Hammering repin on the nested guard must not republish the
        // epoch — the outer pin still caps advancement, so the value
        // cannot be freed no matter how hard the collector is pumped.
        for _ in 0..64 {
            inner.repin();
            std::thread::scope(|s| {
                s.spawn(|| pin().flush());
            });
        }
        assert_eq!(
            LIVE3.load(Ordering::SeqCst),
            1,
            "repin on a nested guard weakened the outer pin"
        );
        // Dropping down to a single guard makes repin effective again.
        drop(outer);
        for _ in 0..2000 {
            if LIVE3.load(Ordering::SeqCst) == 0 {
                break;
            }
            inner.repin();
            std::thread::scope(|s| {
                s.spawn(|| pin().flush());
            });
            std::thread::yield_now();
        }
        assert_eq!(LIVE3.load(Ordering::SeqCst), 0, "repin failed to unblock");
    }

    /// A long-lived guard that keeps calling `repin` must let the epoch
    /// advance (observable through the collector stats) and let garbage
    /// retired after its original pin drain.
    #[test]
    fn repin_unblocks_epoch_advancement() {
        static LIVE4: AtomicI64 = AtomicI64::new(0);
        struct Tracked4;
        impl Drop for Tracked4 {
            fn drop(&mut self) {
                LIVE4.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let mut session = pin(); // long-lived, like a pinned tree session
        #[cfg(feature = "stats")]
        let before = collector_stats();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..10 {
                    LIVE4.fetch_add(1, Ordering::SeqCst);
                    let p = Box::into_raw(Box::new(Tracked4));
                    let g = pin();
                    unsafe { g.defer_destroy(Shared::from(p as *const Tracked4)) };
                }
                pin().flush();
            })
            .join()
            .unwrap();
        });
        for _ in 0..2000 {
            if LIVE4.load(Ordering::SeqCst) == 0 {
                break;
            }
            session.repin(); // the session keeps itself current …
            session.flush(); // … so collection passes can advance
            std::thread::yield_now();
        }
        assert_eq!(
            LIVE4.load(Ordering::SeqCst),
            0,
            "a refreshing session still blocked reclamation"
        );
        #[cfg(feature = "stats")]
        {
            let after = collector_stats();
            assert!(
                after.advance_successes > before.advance_successes,
                "draining garbage implies the epoch advanced"
            );
            assert!(after.bags_freed > before.bags_freed);
        }
        drop(session);
    }
}
