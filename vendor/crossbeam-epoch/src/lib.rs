//! Offline shim for `crossbeam-epoch`: a working epoch-based memory
//! reclamation scheme exposing the subset of the upstream API this
//! workspace uses.
//!
//! The scheme is the classic three-epoch design:
//!
//! * a global epoch counter;
//! * per-thread participants that record the epoch they pinned in;
//! * garbage bags sealed with the epoch current at defer time, freed only
//!   once the global epoch has advanced at least two steps past the seal
//!   (at which point no pinned thread can still hold a reference);
//! * the global epoch advances only when every currently-pinned
//!   participant has caught up to it, so a long-lived `Guard` (e.g. a
//!   tree snapshot) blocks reclamation of everything retired after its
//!   pin — which is exactly the protection it needs.
//!
//! Deviations from upstream, all intentional simplifications:
//!
//! * sealed bags live in one global queue behind a mutex rather than in
//!   per-thread lock-free queues (correct, slightly more contended);
//! * `defer_destroy` on the [`unprotected`] guard destroys immediately
//!   (upstream documents the same behaviour);
//! * no `Owned`, `Collector` or `LocalHandle` types — this workspace
//!   does not use them.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use std::sync::atomic::Ordering as MemoryOrdering;

// ---------------------------------------------------------------------------
// Global + per-thread epoch state
// ---------------------------------------------------------------------------

/// Sentinel meaning "this participant is not pinned".
const UNPINNED: usize = usize::MAX;

/// How many deferred items a local bag accumulates before it is sealed
/// into the global queue and a collection pass is attempted.
const BAG_SEAL_THRESHOLD: usize = 64;

/// A type-erased deferred destruction.
struct Deferred {
    data: *mut (),
    call: unsafe fn(*mut ()),
}

// SAFETY: deferred destructions may be executed by any thread once the
// epoch protocol proves no reader can still hold the pointer. The data
// structures built on this shim declare their own `Send`/`Sync` bounds
// (values crossing threads require `Send + Sync` at the container level).
unsafe impl Send for Deferred {}

impl Deferred {
    fn run(self) {
        // SAFETY: constructed from a matching (data, call) pair.
        unsafe { (self.call)(self.data) }
    }
}

/// Per-thread participant state shared with the global registry.
struct Participant {
    /// Epoch the owning thread pinned in, or [`UNPINNED`].
    epoch: AtomicUsize,
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Sealed garbage bags: `(seal_epoch, items)`.
    garbage: Mutex<VecDeque<(usize, Vec<Deferred>)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(VecDeque::new()),
    })
}

impl Global {
    /// Advance the global epoch if every pinned participant has observed
    /// the current one. Returns the (possibly advanced) epoch.
    fn try_advance(&self) -> usize {
        let e = self.epoch.load(Ordering::SeqCst);
        let participants = self.participants.lock().unwrap();
        for p in participants.iter() {
            let pe = p.epoch.load(Ordering::SeqCst);
            if pe != UNPINNED && pe != e {
                return e; // a straggler is still in an older epoch
            }
        }
        drop(participants);
        // A concurrent advance is fine: compare_exchange keeps the epoch
        // monotone and off-by-one races are conservative.
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Free every sealed bag old enough that no pinned thread can still
    /// reference its contents.
    fn collect(&self) {
        let e = self.try_advance();
        let ripe: Vec<Vec<Deferred>> = {
            let mut garbage = self.garbage.lock().unwrap();
            let mut out = Vec::new();
            while let Some(&(seal, _)) = garbage.front() {
                if seal + 2 <= e {
                    out.push(garbage.pop_front().unwrap().1);
                } else {
                    break;
                }
            }
            out
        };
        // Run destructors outside the lock.
        for bag in ripe {
            for d in bag {
                d.run();
            }
        }
    }

    fn seal(&self, bag: Vec<Deferred>) {
        if bag.is_empty() {
            return;
        }
        let seal = self.epoch.load(Ordering::SeqCst);
        self.garbage.lock().unwrap().push_back((seal, bag));
    }
}

/// Thread-local side of a participant.
struct Local {
    participant: Arc<Participant>,
    guard_count: Cell<usize>,
    bag: RefCell<Vec<Deferred>>,
}

impl Local {
    fn register() -> Local {
        let participant = Arc::new(Participant {
            epoch: AtomicUsize::new(UNPINNED),
        });
        global()
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        Local {
            participant,
            guard_count: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        }
    }

    fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count == 0 {
            let g = global();
            // Publish the epoch we pinned in; loop until the published
            // value is stable against a concurrent advance.
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                self.participant.epoch.store(e, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
    }

    fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without matching pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            self.participant.epoch.store(UNPINNED, Ordering::SeqCst);
        }
    }

    fn repin(&self) {
        // Only safe when this is the thread's sole guard: a nested guard
        // may rely on the older published epoch.
        if self.guard_count.get() == 1 {
            self.participant.epoch.store(UNPINNED, Ordering::SeqCst);
            let g = global();
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                self.participant.epoch.store(e, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
    }

    fn defer(&self, d: Deferred) {
        let mut bag = self.bag.borrow_mut();
        bag.push(d);
        if bag.len() >= BAG_SEAL_THRESHOLD {
            let sealed = std::mem::take(&mut *bag);
            drop(bag);
            let g = global();
            g.seal(sealed);
            g.collect();
        }
    }

    fn flush(&self) {
        let sealed = std::mem::take(&mut *self.bag.borrow_mut());
        let g = global();
        g.seal(sealed);
        g.collect();
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Hand any remaining garbage to the global queue so other
        // threads can free it, and leave the registry.
        let g = global();
        g.seal(std::mem::take(&mut *self.bag.borrow_mut()));
        self.participant.epoch.store(UNPINNED, Ordering::SeqCst);
        g.participants
            .lock()
            .unwrap()
            .retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// A pinned-epoch guard. While any guard is alive on a thread, memory
/// retired after the pin cannot be freed.
pub struct Guard {
    protected: bool,
    /// `Guard` is tied to the thread whose participant it pinned.
    _not_send: PhantomData<*mut ()>,
}

/// Pin the current thread and return the guard.
pub fn pin() -> Guard {
    LOCAL.with(|l| l.pin());
    Guard {
        protected: true,
        _not_send: PhantomData,
    }
}

struct GuardCell(Guard);
// SAFETY: the unprotected guard carries no per-thread state; every
// operation on it is thread-agnostic (defers run immediately, flush is a
// no-op on it).
unsafe impl Sync for GuardCell {}

static UNPROTECTED_GUARD: GuardCell = GuardCell(Guard {
    protected: false,
    _not_send: PhantomData,
});

/// A dummy guard for contexts where the caller guarantees exclusive
/// access (e.g. `Drop` with `&mut self`). Deferred destructions through
/// it run immediately.
///
/// # Safety
///
/// The caller must guarantee no other thread can access the data being
/// read or destroyed through this guard.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED_GUARD.0
}

impl Guard {
    /// Defer destruction of the heap allocation behind `ptr` (a
    /// `Box<T>`-owned allocation) until no pinned thread can reference it.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a live `Box<T>` allocation that is no longer
    /// reachable by threads pinning after this call, and must be retired
    /// at most once.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        debug_assert!(!raw.is_null(), "defer_destroy(null)");
        unsafe fn drop_box<T>(p: *mut ()) {
            drop(Box::from_raw(p as *mut T));
        }
        let d = Deferred {
            data: raw as *mut (),
            call: drop_box::<T>,
        };
        if self.protected {
            LOCAL.with(|l| l.defer(d));
        } else {
            d.run();
        }
    }

    /// Seal this thread's garbage into the global queue and attempt a
    /// collection pass.
    pub fn flush(&self) {
        if self.protected {
            LOCAL.with(|l| l.flush());
        }
    }

    /// Unpin and immediately re-pin the current thread (upstream
    /// `Guard::repin`): republishes the participant's epoch so the
    /// collector can advance past garbage retired since the original
    /// pin. A no-op when other guards on this thread still hold an older
    /// pin (their protection must not be weakened), and on the
    /// unprotected guard.
    pub fn repin(&mut self) {
        if self.protected {
            LOCAL.with(|l| l.repin());
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.protected {
            LOCAL.with(|l| l.unpin());
        }
    }
}

// ---------------------------------------------------------------------------
// Shared
// ---------------------------------------------------------------------------

#[inline]
fn low_bits<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

/// A tagged shared pointer valid for the lifetime of a guard.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p}, tag {})", self.as_raw(), self.tag())
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn from_data(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// The untagged raw pointer.
    #[inline]
    pub fn as_raw(&self) -> *const T {
        (self.data & !low_bits::<T>()) as *const T
    }

    /// The tag stored in the pointer's low (alignment) bits.
    #[inline]
    pub fn tag(&self) -> usize {
        self.data & low_bits::<T>()
    }

    /// The same pointer with the given tag.
    #[inline]
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        Shared::from_data((self.data & !low_bits::<T>()) | (tag & low_bits::<T>()))
    }

    /// Whether the (untagged) pointer is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.as_raw().is_null()
    }

    /// Dereference the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to memory kept alive for
    /// `'g` (reachable under the pinning guard, or owned by the caller).
    #[inline]
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(raw: *const T) -> Self {
        debug_assert_eq!(
            raw as usize & low_bits::<T>(),
            0,
            "raw pointer carries tag bits"
        );
        Shared::from_data(raw as usize)
    }
}

// ---------------------------------------------------------------------------
// Atomic
// ---------------------------------------------------------------------------

/// An atomic tagged pointer to `T`. Does not own the pointee.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: Atomic is a word of tagged-pointer bits; sharing the *word* is
// always safe — dereferencing the pointee is what carries obligations,
// and those live on the unsafe `Shared::deref`.
unsafe impl<T> Send for Atomic<T> {}
unsafe impl<T> Sync for Atomic<T> {}

/// The error of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Load the current value.
    #[inline]
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared::from_data(self.data.load(ord))
    }

    /// Store a new value.
    #[inline]
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.data, ord);
    }

    /// Compare-and-exchange on the full tagged word.
    #[inline]
    pub fn compare_exchange<'g>(
        &self,
        current: Shared<'_, T>,
        new: Shared<'_, T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T>> {
        match self
            .data
            .compare_exchange(current.data, new.data, success, failure)
        {
            Ok(prev) => Ok(Shared::from_data(prev)),
            Err(actual) => Err(CompareExchangeError {
                current: Shared::from_data(actual),
            }),
        }
    }
}

impl<T> From<Shared<'_, T>> for Atomic<T> {
    fn from(s: Shared<'_, T>) -> Self {
        Atomic {
            data: AtomicUsize::new(s.data),
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:#x})", self.data.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn tag_roundtrip() {
        let b = Box::new(0u64);
        let raw: *const u64 = &*b;
        let s = Shared::from(raw);
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert_eq!(t.as_raw(), raw);
        assert_eq!(t.with_tag(0), s);
    }

    #[test]
    fn cas_on_tagged_word() {
        let b = Box::new(7u64);
        let raw: *const u64 = &*b;
        let a: Atomic<u64> = Atomic::null();
        let g = pin();
        assert!(a
            .compare_exchange(
                Shared::null(),
                Shared::from(raw).with_tag(1),
                Ordering::SeqCst,
                Ordering::SeqCst,
                &g
            )
            .is_ok());
        let cur = a.load(Ordering::SeqCst, &g);
        assert_eq!(cur.tag(), 1);
        assert_eq!(cur.as_raw(), raw);
        // Untagged expected value must fail against the tagged word.
        let err = a
            .compare_exchange(
                Shared::from(raw),
                Shared::null(),
                Ordering::SeqCst,
                Ordering::SeqCst,
                &g,
            )
            .unwrap_err();
        assert_eq!(err.current.tag(), 1);
    }

    #[test]
    fn deferred_destruction_runs_after_quiescence() {
        static LIVE: AtomicI64 = AtomicI64::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        for _ in 0..100 {
            LIVE.fetch_add(1, Ordering::SeqCst);
            let p = Box::into_raw(Box::new(Tracked));
            let g = pin();
            unsafe { g.defer_destroy(Shared::from(p as *const Tracked)) };
        }
        // Other tests in this binary may hold pins concurrently (which
        // legitimately stalls advancement), so drain with retries.
        for _ in 0..2000 {
            if LIVE.load(Ordering::SeqCst) == 0 {
                break;
            }
            pin().flush();
            std::thread::yield_now();
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "garbage not reclaimed");
    }

    #[test]
    fn pinned_guard_blocks_reclamation() {
        static LIVE2: AtomicI64 = AtomicI64::new(0);
        struct Tracked2;
        impl Drop for Tracked2 {
            fn drop(&mut self) {
                LIVE2.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let held = pin();
        std::thread::scope(|s| {
            s.spawn(|| {
                LIVE2.fetch_add(1, Ordering::SeqCst);
                let p = Box::into_raw(Box::new(Tracked2));
                let g = pin();
                unsafe { g.defer_destroy(Shared::from(p as *const Tracked2)) };
                drop(g);
                for _ in 0..64 {
                    pin().flush();
                }
                // The outer thread is still pinned: at most one epoch of
                // progress can have happened since its pin, so the value
                // must still be alive.
                assert_eq!(LIVE2.load(Ordering::SeqCst), 1, "freed under a live pin");
            })
            .join()
            .unwrap();
        });
        drop(held);
        for _ in 0..2000 {
            if LIVE2.load(Ordering::SeqCst) == 0 {
                break;
            }
            pin().flush();
            std::thread::yield_now();
        }
        assert_eq!(LIVE2.load(Ordering::SeqCst), 0);
    }
}
