//! Collector statistics, compiled in with the `stats` feature.
//!
//! Process-global cumulative counters over the collector's lifecycle:
//! bags sealed into the global queue, bags (and items) freed after
//! ripening, epoch-advance attempts and successes, and participant
//! registry nodes retired after thread exit. Without the feature every
//! recording call compiles to nothing, so the counters can never perturb
//! measurement builds that don't ask for them.
//!
//! The counters are monotone and shared by every tree in the process
//! (the collector itself is process-global); consumers should assert on
//! *deltas*, not absolute values.

#[cfg(feature = "stats")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "stats")]
static BAGS_SEALED: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static BAGS_FREED: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static ITEMS_FREED: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static ADVANCE_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static ADVANCE_SUCCESSES: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "stats")]
static PARTICIPANTS_RETIRED: AtomicU64 = AtomicU64::new(0);

/// Cumulative collector statistics (process-global, monotone).
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Garbage bags sealed into the global queue (including bags of
    /// retired queue/registry nodes the collector feeds back to itself).
    pub bags_sealed: u64,
    /// Ripe bags popped and destroyed.
    pub bags_freed: u64,
    /// Individual deferred destructions executed.
    pub items_freed: u64,
    /// Calls to `try_advance` (each is one registry scan).
    pub advance_attempts: u64,
    /// Epoch-advance CASes won.
    pub advance_successes: u64,
    /// Participant registry nodes physically unlinked after thread exit.
    pub participants_retired: u64,
}

/// Read the collector counters.
#[cfg(feature = "stats")]
pub fn collector_stats() -> CollectorStats {
    CollectorStats {
        bags_sealed: BAGS_SEALED.load(Ordering::Relaxed),
        bags_freed: BAGS_FREED.load(Ordering::Relaxed),
        items_freed: ITEMS_FREED.load(Ordering::Relaxed),
        advance_attempts: ADVANCE_ATTEMPTS.load(Ordering::Relaxed),
        advance_successes: ADVANCE_SUCCESSES.load(Ordering::Relaxed),
        participants_retired: PARTICIPANTS_RETIRED.load(Ordering::Relaxed),
    }
}

macro_rules! bump_impl {
    ($($fn_name:ident => $counter:ident),* $(,)?) => {
        $(
            #[cfg(feature = "stats")]
            #[inline]
            pub(crate) fn $fn_name() {
                $counter.fetch_add(1, Ordering::Relaxed);
            }
            #[cfg(not(feature = "stats"))]
            #[inline(always)]
            pub(crate) fn $fn_name() {}
        )*
    };
}

bump_impl!(
    bag_sealed => BAGS_SEALED,
    advance_attempt => ADVANCE_ATTEMPTS,
    advance_success => ADVANCE_SUCCESSES,
    participant_retired => PARTICIPANTS_RETIRED,
);

/// Record one freed bag of `items` deferred destructions.
#[cfg(feature = "stats")]
#[inline]
pub(crate) fn bag_freed(items: usize) {
    BAGS_FREED.fetch_add(1, Ordering::Relaxed);
    ITEMS_FREED.fetch_add(items as u64, Ordering::Relaxed);
}
#[cfg(not(feature = "stats"))]
#[inline(always)]
pub(crate) fn bag_freed(_items: usize) {}

#[cfg(all(test, feature = "stats"))]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_observable() {
        let before = collector_stats();
        bag_sealed();
        bag_freed(3);
        advance_attempt();
        advance_success();
        participant_retired();
        let after = collector_stats();
        assert!(after.bags_sealed > before.bags_sealed);
        assert!(after.bags_freed > before.bags_freed);
        assert!(after.items_freed >= before.items_freed + 3);
        assert!(after.advance_attempts > before.advance_attempts);
        assert!(after.advance_successes > before.advance_successes);
        assert!(after.participants_retired > before.participants_retired);
    }
}
