//! Offline shim for `rand` (0.8 API subset): `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `rngs::SmallRng` (xoshiro256++
//! seeded through SplitMix64, the same construction the real `SmallRng`
//! uses on 64-bit platforms), and `seq::SliceRandom::shuffle`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable over a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes used here.
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let x = rng.next_u64() as u128;
                (lo as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build the RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for u64 seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait: random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i + 1));
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_plausible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let y = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
        // gen_bool(0.5) should be roughly balanced.
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
