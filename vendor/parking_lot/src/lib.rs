//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, delegating to `std::sync`. A poisoned std lock
//! (panic while held) is transparently recovered, which matches
//! parking_lot's behaviour of not poisoning at all.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (non-poisoning `lock()`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(10);
        assert_eq!(*rw.read(), 10);
        *rw.write() += 5;
        assert_eq!(*rw.read(), 15);
        assert_eq!(rw.into_inner(), 15);
        assert_eq!(m.into_inner(), 2);
    }
}
