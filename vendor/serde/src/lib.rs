//! Offline shim for `serde`: a marker `Serialize` trait plus the derive.
//! This workspace uses `Serialize` only as a derived marker on report
//! structs (no serializer backend is vendored), so the trait carries no
//! methods; swapping in real serde requires no source changes.

pub use serde_derive::Serialize;

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
