//! Offline shim for `criterion`: the API surface this workspace's bench
//! targets use (`Criterion::benchmark_group`, `BenchmarkGroup` settings,
//! `Bencher::{iter, iter_custom}`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros).
//!
//! Measurement is intentionally lightweight: each benchmark runs a short
//! warm-up followed by `sample_size` timed samples of one batch each, and
//! prints `name ... median time` lines. There is no statistics engine,
//! no HTML report, and no regression baseline — the benches compile and
//! produce usable relative numbers, which is what the offline CI needs
//! (`cargo bench --no-run` for the compile gate, `cargo bench` for a
//! quick local look).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    sampled: Vec<Duration>,
    iters_per_sample: u64,
    samples: usize,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            sampled: Vec::new(),
            iters_per_sample: 1,
            samples,
        }
    }

    /// Time `f`, called once per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: aim for samples of at least ~1ms.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.sampled
                .push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Time a custom batch: `f(iters)` must return the elapsed time of
    /// `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.iters_per_sample = 1;
        for _ in 0..self.samples {
            self.sampled.push(f(1));
        }
    }

    fn median(&mut self) -> Duration {
        if self.sampled.is_empty() {
            return Duration::ZERO;
        }
        self.sampled.sort_unstable();
        self.sampled[self.sampled.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim warm-up is calibrated
    /// per benchmark instead.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim measures a fixed number
    /// of samples instead of a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, b.median());
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, b.median());
        self
    }

    /// Finish the group (report flushing is immediate in the shim).
    pub fn finish(self) {}

    fn report(&mut self, id: &BenchmarkId, median: Duration) {
        let mut line = format!(
            "{}/{:<40} median {:>12.3?}",
            self.name,
            id.to_string(),
            median
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                let _ = write!(line, "  ({:.1} Melem/s)", n as f64 / secs / 1e6);
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Opaque value barrier (re-export for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; a user may also filter by
            // name — the shim runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("custom", 2), &5u64, |b, &x| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                Duration::from_nanos(x)
            })
        });
        g.finish();
        assert!(calls > 0);
        assert_eq!(c.benchmarks_run, 2);
    }
}
