//! Offline shim for `crossbeam-utils`: just [`CachePadded`].

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line, so hot atomics
/// in adjacent fields do not false-share.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(42u64);
        assert_eq!(*p, 42);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 42);
    }
}
