//! Offline shim for `proptest`: random-input property testing with the
//! upstream macro surface (`proptest!`, `prop_oneof!`, `prop_assert*!`)
//! and strategy combinators (`Just`, `any`, ranges, tuples, `prop_map`,
//! `collection::{vec, btree_set}`), but **without shrinking** — a failing
//! case panics with its case number so it can be replayed by rerunning
//! (generation is deterministic per case index).
//!
//! Case counts honour two environment variables:
//!
//! * `PROPTEST_CASES` — absolute override of the per-test case count;
//! * `PNBBST_TEST_ITERS` — multiplier on the configured count (the
//!   workspace-wide knob for deep test runs).

/// Deterministic test RNG (SplitMix64).
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Apply `PROPTEST_CASES` / `PNBBST_TEST_ITERS` to a configured count.
    pub fn resolved_cases(configured: u32) -> u64 {
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.trim().parse::<u64>() {
                return n.max(1);
            }
        }
        let scale = std::env::var("PNBBST_TEST_ITERS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(1)
            .max(1);
        (configured as u64).saturating_mul(scale)
    }

    /// Deterministic per-case RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case number `case` (stable across runs).
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x9E3779B97F4A7C15u64 ^ case.wrapping_mul(0xD1B54A32D192ED03),
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// Strategies: deterministic random value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;
        fn sample_value(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// Weighted choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 inclusive range.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample_value(rng), self.1.sample_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample_value(rng),
                self.1.sample_value(rng),
                self.2.sample_value(rng),
            )
        }
    }
}

/// `any::<T>()` — full-domain generation.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `len` (duplicates may produce smaller sets, as upstream allows).
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A `BTreeSet` strategy with the given element strategy and size range.
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, len }
    }
}

/// The upstream prelude surface this workspace uses.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each argument is drawn from its strategy for
/// every case; a failing assertion panics with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let __cases = $crate::test_runner::resolved_cases(__cfg.cases);
                for __case in 0..__cases {
                    let __result = ::std::panic::catch_unwind(|| {
                        let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                        $(
                            let $arg =
                                $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);
                        )+
                        $body
                    });
                    if let Err(e) = __result {
                        eprintln!(
                            "proptest case {__case} of {__cases} failed for `{}`",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Weighted random choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Property assertion (panics on failure in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)+) => { assert!($($tokens)+) };
}

/// Discard the current case when the assumption does not hold. Upstream
/// resamples a replacement input; this shim simply skips the case (the
/// case count includes skipped cases, which is fine at our scales).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Property equality assertion (panics on failure in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)+) => { assert_eq!($($tokens)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u16),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 0u16..1) {
            prop_assert!((5..10).contains(&x));
            prop_assert_eq!(y, 0);
        }

        #[test]
        fn collections_and_oneof(
            v in prop::collection::vec(prop_oneof![
                3 => (0u16..50).prop_map(Pick::A),
                1 => Just(Pick::B),
            ], 1..20),
            s in prop::collection::btree_set(0u32..100, 0..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for p in &v {
                if let Pick::A(k) = p {
                    prop_assert!(*k < 50);
                }
            }
            prop_assert!(s.len() < 30);
        }
    }

    #[test]
    fn determinism_per_case() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        assert_eq!(s.sample_value(&mut a), s.sample_value(&mut b));
    }
}
