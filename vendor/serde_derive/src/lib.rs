//! Offline shim for `serde_derive`: a dependency-free `Serialize` derive
//! that emits a marker-trait impl. Parses just enough of the item to find
//! its name; generic types are not supported (none in this workspace
//! derive `Serialize`).

use proc_macro::{TokenStream, TokenTree};

/// Derive the (marker) `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input).expect("Serialize derive: could not find item name");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("Serialize derive: generated impl failed to parse")
}

/// The identifier following the first `struct` / `enum` keyword.
fn item_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}
