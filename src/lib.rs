//! # pnbbst-repro — reproduction suite facade
//!
//! Umbrella crate for the reproduction of Fatourou & Ruppert,
//! *Persistent Non-Blocking Binary Search Trees Supporting Wait-Free
//! Range Queries* (SPAA 2019). Re-exports the main entry points of every
//! workspace crate so the examples and cross-crate integration tests
//! have a single import root:
//!
//! * [`PnbBst`] / [`PnbBstSet`] / [`Snapshot`] — the paper's structure
//!   (crate `pnb-bst`), plus the pinned-session [`Handle`] and lazy
//!   [`Range`] iterator.
//! * [`ShardedPnbBst`] / [`ShardedSnapshot`] — the sharded front-end
//!   (crate `pnb-shard`): key-space partitioning over independent
//!   PNB-BSTs with cross-shard consistent range queries and snapshots,
//!   routed by a pluggable [`Partitioner`]. Both maps also support
//!   durable checkpoints (`checkpoint`/`restore`, DESIGN §9) with a
//!   typed [`CheckpointError`] on torn or corrupt on-disk state.
//! * [`NbBst`] — the PODC 2010 substrate it extends (crate `nb-bst`).
//! * [`RwLockTree`] / [`MutexTree`] / [`SeqBst`] — baselines (crate
//!   `lock-bst`).
//! * [`workload`] — the setbench-style measurement harness.
//! * [`pnb_server`] — the network front-end: the sharded map served
//!   over a length-prefixed binary protocol on TCP (DESIGN §8), with
//!   a pipelined [`pnb_server::Client`] and the
//!   [`pnb_server::NetMap`] workload adapter.
//!
//! See `README.md` for the repository tour, `DESIGN.md` for the system
//! inventory and experiment index, and `EXPERIMENTS.md` for measured
//! results.

#![warn(missing_docs)]

// Every ```rust block in the README compiles and runs as a doctest of
// this crate (`cargo test --doc`), so the quickstart and the
// "Which map do I use?" snippets cannot rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub use lock_bst::seq::SeqBst;
pub use lock_bst::{MutexTree, RwLockTree};
pub use nb_bst::NbBst;
pub use pnb_bst::{
    CheckpointError, CheckpointReport, Handle, PnbBst, PnbBstSet, Range, Snapshot, StatsSnapshot,
};
pub use pnb_shard::{
    HashPartitioner, MergeRange, Partitioner, PersistentPartitioner, RangePrefixPartitioner,
    ShardedPnbBst, ShardedSession, ShardedSnapshot,
};

pub use pnb_server;
pub use workload;
