#!/usr/bin/env bash
# CI checkpoint-smoke gate: the restart-with-state contract, end to end.
#
#   1. boot pnb-server with --checkpoint-dir, load it for ~2s (update
#      mix), take a durable checkpoint over the wire, record the exact
#      key count C1;
#   2. keep read-only (find-mix) load running, fire a second checkpoint
#      and kill -9 the server mid-life — no drain, no warning;
#   3. restart with --restore and require the full-range count to equal
#      C1 exactly: the newest *committed* generation loads, a torn
#      in-flight generation is invisible, and nothing is partially
#      applied (DESIGN §9).
#
# The find-only phase means map content cannot change after C1 was
# recorded, so any committed checkpoint the restart picks — the first
# or the racing second — must hold exactly C1 keys.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
load_pid=""
cleanup() {
    for pid in "$load_pid" "$server_pid"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building pnb-server + pnb-load (release) =="
cargo build --release --locked -p pnb-server --bins

boot_server() { # boot_server <extra flags...>; sets $server_pid and $addr
    local addr_file="$workdir/addr"
    rm -f "$addr_file"
    ./target/release/pnb-server --addr 127.0.0.1:0 --shards 4 --workers 2 \
        --addr-file "$addr_file" --checkpoint-dir "$workdir/ckpt" "$@" \
        >>"$workdir/server.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$addr_file" ]] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "server died before binding:" >&2
            cat "$workdir/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    [[ -s "$addr_file" ]] || { echo "server never wrote --addr-file" >&2; exit 1; }
    addr=$(cat "$addr_file")
}

echo "== first life: load, checkpoint, record the count =="
boot_server
echo "   bound at $addr"
./target/release/pnb-load --addr "$addr" --threads 2 --rate 5000 \
    --duration-ms 2000 --keys 8192 --mix update >/dev/null
ckpt_line=$(./target/release/pnb-load --addr "$addr" --checkpoint-now)
echo "   $ckpt_line"
grep -q 'checkpoint generation=' <<<"$ckpt_line"
c1=$(./target/release/pnb-load --addr "$addr" --count | sed 's/.*count=//')
echo "   count after checkpoint: $c1"

echo "== kill -9 mid-second-checkpoint under read-only load =="
# Find-only load (prefill 0 => no writes at all): content stays frozen
# at exactly the C1 cut while the second checkpoint races the kill.
./target/release/pnb-load --addr "$addr" --threads 2 --rate 5000 \
    --duration-ms 10000 --keys 8192 --mix find --prefill 0 >/dev/null 2>&1 &
load_pid=$!
./target/release/pnb-load --addr "$addr" --checkpoint-now >/dev/null &
sleep 0.05
kill -KILL "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$load_pid" 2>/dev/null || true
load_pid=""

echo "== second life: --restore must recover exactly $c1 keys =="
boot_server --restore
echo "   restored, bound at $addr"
c2=$(./target/release/pnb-load --addr "$addr" --count | sed 's/.*count=//')
echo "   count after restore: $c2"
if [[ "$c1" != "$c2" ]]; then
    echo "restore mismatch: checkpointed $c1 keys, restored $c2" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi

kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "checkpoint-smoke: OK (recovered $c2 keys)"
