#!/usr/bin/env python3
"""Perf-trajectory regression gate.

Compares a fresh ``experiments --json`` run against the committed
``BENCH_baseline.json`` and fails when the epoch trees' throughput
regressed by more than the threshold (default 25%).

Cross-machine robustness: the baseline was recorded on one machine and
CI runs on another, so raw ops/sec ratios would gate on hardware, not
code. The gate therefore first estimates a machine-speed factor from
the *reference structures* (``mutex-btreemap``, ``rwlock-btreemap``,
``seq-bst`` — std containers whose code this repository never touches)
as the median fresh/baseline ratio over their shared rows, then judges
each tested series (``pnb-bst``, ``nb-bst``) on its median ratio
*normalized by that factor*. If no reference rows overlap, it falls
back to raw ratios with a warning (same-machine comparisons, e.g. the
local workflow, are exact either way).

Rows are matched on (experiment, structure, threads, key_range); only
rows present in BOTH files are compared, so a quick-mode CI sweep can
be gated against a full-mode baseline. Judging medians per
(experiment, structure) series rides out single-cell noise.

Usage: check_bench_regression.py <baseline.json> <fresh.json> [threshold]
"""

import json
import statistics
import sys

REFERENCE_STRUCTURES = {"mutex-btreemap", "rwlock-btreemap", "seq-bst"}


def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc.get("results", []):
        if "ops_per_sec" not in r:
            continue  # latency/ablation rows carry no throughput
        key = (
            r.get("experiment"),
            r.get("structure"),
            r.get("threads"),
            r.get("key_range"),
        )
        out[key] = float(r["ops_per_sec"])
    return out


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline = rows(sys.argv[1])
    fresh = rows(sys.argv[2])
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        sys.exit(
            "FAIL: no overlapping (experiment, structure, threads, key_range) "
            "rows between baseline and fresh run — the gate would be vacuous."
        )

    ref_ratios = [
        fresh[k] / baseline[k]
        for k in shared
        if k[1] in REFERENCE_STRUCTURES and baseline[k] > 0
    ]
    if ref_ratios:
        speed = statistics.median(ref_ratios)
        print(
            f"machine-speed factor: {speed:.3f} "
            f"(median of {len(ref_ratios)} reference-structure cells)"
        )
    else:
        speed = 1.0
        print(
            "WARNING: no reference-structure rows overlap; gating on raw "
            "ratios (only meaningful on the baseline's own machine)."
        )

    series = {}
    for key in shared:
        exp, structure, _, _ = key
        if structure in REFERENCE_STRUCTURES:
            continue
        ratio = fresh[key] / baseline[key] if baseline[key] > 0 else 1.0
        series.setdefault((exp, structure), []).append((key, ratio / speed))

    if not series:
        sys.exit("FAIL: no tested-structure rows overlap with the baseline.")

    failed = False
    for (exp, structure), cells in sorted(series.items()):
        med = statistics.median(r for _, r in cells)
        verdict = "OK" if med >= 1.0 - threshold else "REGRESSED"
        print(
            f"{verdict:9} {exp}/{structure}: normalized median ratio {med:.3f} "
            f"over {len(cells)} cell(s)"
        )
        for key, ratio in cells:
            print(f"          {key}: {ratio:.3f}")
        if med < 1.0 - threshold:
            failed = True

    if failed:
        sys.exit(
            f"FAIL: at least one series' normalized median throughput dropped "
            f"more than {threshold:.0%} below BENCH_baseline.json."
        )
    print(
        f"regression gate OK: {sum(len(c) for c in series.values())} tested "
        f"rows compared, threshold {threshold:.0%}"
    )


if __name__ == "__main__":
    main()
