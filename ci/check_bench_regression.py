#!/usr/bin/env python3
"""Perf-trajectory regression gate.

Compares a fresh ``experiments --json`` run against the committed
``BENCH_baseline.json`` and fails when the epoch trees' throughput
regressed by more than the threshold (default 25%).

Cross-machine robustness: the baseline was recorded on one machine and
CI runs on another, so raw ops/sec ratios would gate on hardware, not
code. The gate therefore first estimates a machine-speed factor from
the *reference structures* (``mutex-btreemap``, ``rwlock-btreemap``,
``seq-bst`` — std containers whose code this repository never touches)
as the median fresh/baseline ratio over their shared rows, then judges
each tested series (``pnb-bst``, ``nb-bst``) on its median ratio
*normalized by that factor*. If no reference rows overlap, it falls
back to raw ratios with a warning (same-machine comparisons, e.g. the
local workflow, are exact either way).

Rows are matched on (experiment, structure, threads, key_range); only
rows present in BOTH files are compared, so a quick-mode CI sweep can
be gated against a full-mode baseline. Judging medians per
(experiment, structure) series rides out single-cell noise.

Tail-latency gate: rows carrying ``p99_ns`` (the E11 open-loop sweep)
are additionally matched on (op, offered_rate) and judged the same way
with the normalization inverted (a faster machine should show *lower*
latency, so the normalized ratio is fresh/baseline x speed). The
latency threshold is wider — a series fails only when its normalized
median p99 more than doubles — because p99 at a fixed offered rate is
far noisier than median throughput, especially near saturation.

Usage: check_bench_regression.py <baseline.json> <fresh.json> [threshold] [lat_growth]
"""

import json
import statistics
import sys

REFERENCE_STRUCTURES = {"mutex-btreemap", "rwlock-btreemap", "seq-bst"}


def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    lat = {}
    for r in doc.get("results", []):
        if "p99_ns" in r and "offered_rate" in r:
            key = (
                r.get("experiment"),
                r.get("structure"),
                r.get("threads"),
                r.get("key_range"),
                r.get("op"),
                r.get("offered_rate"),
            )
            lat[key] = float(r["p99_ns"])
            continue
        if "ops_per_sec" not in r:
            continue  # closed-loop latency/ablation rows carry no throughput
        key = (
            r.get("experiment"),
            r.get("structure"),
            r.get("threads"),
            r.get("key_range"),
        )
        out[key] = float(r["ops_per_sec"])
    return out, lat


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline, baseline_lat = rows(sys.argv[1])
    fresh, fresh_lat = rows(sys.argv[2])
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25
    # Max allowed normalized p99 growth factor (2.0 = p99 may double).
    lat_growth = float(sys.argv[4]) if len(sys.argv) > 4 else 2.0

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        sys.exit(
            "FAIL: no overlapping (experiment, structure, threads, key_range) "
            "rows between baseline and fresh run — the gate would be vacuous."
        )

    ref_ratios = [
        fresh[k] / baseline[k]
        for k in shared
        if k[1] in REFERENCE_STRUCTURES and baseline[k] > 0
    ]
    if ref_ratios:
        speed = statistics.median(ref_ratios)
        print(
            f"machine-speed factor: {speed:.3f} "
            f"(median of {len(ref_ratios)} reference-structure cells)"
        )
    else:
        speed = 1.0
        print(
            "WARNING: no reference-structure rows overlap; gating on raw "
            "ratios (only meaningful on the baseline's own machine)."
        )

    series = {}
    for key in shared:
        exp, structure, _, _ = key
        if structure in REFERENCE_STRUCTURES:
            continue
        ratio = fresh[key] / baseline[key] if baseline[key] > 0 else 1.0
        series.setdefault((exp, structure), []).append((key, ratio / speed))

    if not series:
        sys.exit("FAIL: no tested-structure rows overlap with the baseline.")

    failed = False
    for (exp, structure), cells in sorted(series.items()):
        med = statistics.median(r for _, r in cells)
        verdict = "OK" if med >= 1.0 - threshold else "REGRESSED"
        print(
            f"{verdict:9} {exp}/{structure}: normalized median ratio {med:.3f} "
            f"over {len(cells)} cell(s)"
        )
        for key, ratio in cells:
            print(f"          {key}: {ratio:.3f}")
        if med < 1.0 - threshold:
            failed = True

    # --- Tail-latency gate (E11 open-loop p99 rows) ---------------------
    lat_shared = sorted(set(baseline_lat) & set(fresh_lat))
    lat_series = {}
    lat_compared = 0
    for key in lat_shared:
        exp, structure = key[0], key[1]
        if structure in REFERENCE_STRUCTURES or baseline_lat[key] <= 0:
            continue
        # Latency normalization is the inverse of throughput's: on a
        # machine measured `speed`x faster, a code-neutral p99 should be
        # ~`speed`x lower, so scale the raw ratio back up by `speed`.
        ratio = (fresh_lat[key] / baseline_lat[key]) * speed
        lat_series.setdefault((exp, structure), []).append((key, ratio))
        lat_compared += 1
    if not lat_series:
        print(
            "note: no overlapping tail-latency (p99) rows — latency gate "
            "skipped (baseline predates the E11 columns?)"
        )
    for (exp, structure), cells in sorted(lat_series.items()):
        med = statistics.median(r for _, r in cells)
        verdict = "OK" if med <= lat_growth else "REGRESSED"
        print(
            f"{verdict:9} {exp}/{structure} p99: normalized median ratio "
            f"{med:.3f} over {len(cells)} cell(s) (allowed <= {lat_growth:.1f}x)"
        )
        for key, ratio in cells:
            print(f"          {key}: {ratio:.3f}")
        if med > lat_growth:
            failed = True

    if failed:
        sys.exit(
            f"FAIL: a tested series regressed — normalized median throughput "
            f"dropped more than {threshold:.0%}, or normalized median p99 grew "
            f"more than {lat_growth:.1f}x, vs BENCH_baseline.json."
        )
    print(
        f"regression gate OK: {sum(len(c) for c in series.values())} throughput "
        f"rows + {lat_compared} p99 rows compared "
        f"(threshold {threshold:.0%}, p99 growth cap {lat_growth:.1f}x)"
    )


if __name__ == "__main__":
    main()
