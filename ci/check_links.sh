#!/usr/bin/env bash
# Intra-repo markdown link gate (lychee-style, dependency-free).
#
# Fails when a relative link in the documentation set points at a file
# that does not exist in the repository — the docs pass of PR 5 made
# README/DESIGN/PAPER_MAP cross-reference each other and the sources
# heavily, and a broken pointer in a "teachable" doc set is a bug.
#
# Checked link forms, per file:
#   * inline links        [text](target)  (also [text](target#anchor))
#   * reference defs      [label]: target
# Skipped targets: absolute URLs (http/https/mailto) and pure-anchor
# links (#section). Anchors on file targets are stripped — existence of
# the file is the gate; heading drift is the reviewer's job.
#
# Usage: ci/check_links.sh [file.md ...]   (defaults to the doc set)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    files=(README.md DESIGN.md docs/PAPER_MAP.md)
fi

fail=0
for f in "${files[@]}"; do
    if [ ! -f "$f" ]; then
        echo "FAIL: documentation file missing: $f"
        fail=1
        continue
    fi
    dir=$(dirname "$f")

    # Inline [text](target): extract every "](...)" group, then strip
    # the markup. Reference definitions: "[label]: target" lines.
    inline=$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
    refs=$(grep -oE '^\[[^]]+\]:[[:space:]]*[^[:space:]]+' "$f" \
        | sed -E 's/^\[[^]]+\]:[[:space:]]*//' || true)

    while IFS= read -r target; do
        [ -z "$target" ] && continue
        # Drop optional titles: [text](path "title")
        target=${target%% \"*}
        # Skip external and pure-anchor targets.
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;;
        esac
        # Strip anchors from file targets.
        target=${target%%#*}
        [ -z "$target" ] && continue
        # Resolve relative to the containing file.
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "FAIL: $f links to missing path: $target"
            fail=1
        fi
    done <<<"$inline
$refs"
done

if [ "$fail" -ne 0 ]; then
    echo "Broken intra-repo documentation links (see above)."
    exit 1
fi
echo "docs link gate OK: ${files[*]}"
