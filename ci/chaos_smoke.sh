#!/usr/bin/env bash
# CI chaos-smoke gate: the failure contract, end to end, with real
# processes and real faults.
#
#   1. boot pnb-server (with --checkpoint-dir) and a pnb-chaos proxy in
#      front of it injecting seeded delays, splits, and connection
#      resets;
#   2. run `pnb-load --fill N` THROUGH the proxy: the self-healing
#      client must retry through every injected reset and ack all N
#      inserts, and the server's direct full-range count must equal the
#      acknowledged number — zero lost acknowledged ops;
#   3. checkpoint, then kill -9 the server under read-only load (still
#      through the proxy) and restart it with --restore on the SAME
#      address: the load driver must ride through the restart via
#      reconnect+retry and exit 0, and the restored count must still be
#      exactly N.
#
# Faults here are delay/split/reset only: corruption and truncation are
# covered deterministically in `tests/chaos.rs`; in a wall-clock-bounded
# smoke they would only add client-side read-timeout stalls.
set -euo pipefail
cd "$(dirname "$0")/.."

fill_n=2000

workdir=$(mktemp -d)
server_pid=""
proxy_pid=""
load_pid=""
cleanup() {
    for pid in "$load_pid" "$proxy_pid" "$server_pid"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building pnb-server + pnb-load + pnb-chaos (release) =="
cargo build --release --locked -p pnb-server --bins

boot_server() { # boot_server <addr> <extra flags...>; sets $server_pid and $server_addr
    local want_addr=$1
    shift
    local addr_file="$workdir/server_addr"
    # A restart races the kernel releasing the old bind: retry the boot
    # on the same fixed address until it sticks (transient EADDRINUSE).
    for attempt in $(seq 1 50); do
        rm -f "$addr_file"
        ./target/release/pnb-server --addr "$want_addr" --shards 4 --workers 2 \
            --addr-file "$addr_file" --checkpoint-dir "$workdir/ckpt" "$@" \
            >>"$workdir/server.log" 2>&1 &
        server_pid=$!
        for _ in $(seq 1 100); do
            [[ -s "$addr_file" ]] && break
            kill -0 "$server_pid" 2>/dev/null || break
            sleep 0.1
        done
        [[ -s "$addr_file" ]] && break
        wait "$server_pid" 2>/dev/null || true
        server_pid=""
        sleep 0.2
    done
    if [[ ! -s "$addr_file" ]]; then
        echo "server never bound $want_addr:" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    server_addr=$(cat "$addr_file")
}

echo "== boot server + chaos proxy (seeded delays, splits, resets) =="
boot_server 127.0.0.1:0
echo "   server at $server_addr"
proxy_addr_file="$workdir/proxy_addr"
./target/release/pnb-chaos --upstream "$server_addr" --addr 127.0.0.1:0 \
    --addr-file "$proxy_addr_file" --seed 20190622 \
    --delay-prob 0.02 --delay-ms 3 --split-prob 0.05 --reset-prob 0.03 \
    >"$workdir/proxy.log" 2>&1 &
proxy_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$proxy_addr_file" ]] && break
    if ! kill -0 "$proxy_pid" 2>/dev/null; then
        echo "proxy died before binding:" >&2
        cat "$workdir/proxy.log" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$proxy_addr_file" ]] || { echo "proxy never wrote --addr-file" >&2; exit 1; }
proxy_addr=$(cat "$proxy_addr_file")
echo "   proxy at $proxy_addr -> $server_addr"

echo "== fill $fill_n keys through the faulty proxy =="
fill_line=$(./target/release/pnb-load --addr "$proxy_addr" --fill "$fill_n" \
    --retry-deadline-ms 20000 --seed 1)
echo "   $fill_line"
acked=$(sed 's/.*acked=\([0-9]*\).*/\1/' <<<"$fill_line")
if [[ "$acked" != "$fill_n" ]]; then
    echo "fill acked only $acked of $fill_n through the proxy" >&2
    exit 1
fi

echo "== zero lost acknowledged ops: direct count must equal acked =="
c1=$(./target/release/pnb-load --addr "$server_addr" --count | sed 's/.*count=//')
echo "   server count: $c1 (acked: $acked)"
if [[ "$c1" != "$acked" ]]; then
    echo "lost acknowledged mutations: acked $acked, server holds $c1" >&2
    exit 1
fi

echo "== checkpoint, then kill -9 under read-only load through the proxy =="
./target/release/pnb-load --addr "$server_addr" --checkpoint-now >/dev/null
# Find-only (prefill 0 => no writes): content stays frozen at the
# checkpoint cut, and the self-healing client must reconnect-and-retry
# straight through the restart below without a single failed call.
./target/release/pnb-load --addr "$proxy_addr" --threads 2 --rate 2000 \
    --duration-ms 8000 --keys "$fill_n" --mix find --prefill 0 \
    --retry-deadline-ms 20000 >"$workdir/load.log" 2>&1 &
load_pid=$!
sleep 1
kill -KILL "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
sleep 0.5
boot_server "$server_addr" --restore
echo "   restored at $server_addr"

echo "== the riding load must finish cleanly across the restart =="
if ! wait "$load_pid"; then
    echo "read-only load failed across the kill/restart:" >&2
    cat "$workdir/load.log" >&2
    exit 1
fi
load_pid=""
grep -q "achieved" "$workdir/load.log"

echo "== restored count must still be exactly $fill_n =="
c2=$(./target/release/pnb-load --addr "$server_addr" --count | sed 's/.*count=//')
echo "   count after restore: $c2"
if [[ "$c2" != "$fill_n" ]]; then
    echo "restore lost acknowledged fills: expected $fill_n, got $c2" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi

echo "== graceful teardown =="
kill -TERM "$proxy_pid"
wait "$proxy_pid" 2>/dev/null || true
proxy_pid=""
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q "drained, bye" "$workdir/server.log"

echo "chaos-smoke: OK ($fill_n acked fills survived faults and a kill -9)"
