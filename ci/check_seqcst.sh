#!/usr/bin/env bash
# Memory-ordering grep gate (mirrors PR 3's "zero mutexes" discipline).
#
# The PR 4 ordering audit (DESIGN.md §3.5) established that the tree
# protocol needs sequential consistency ONLY on the scan-handshake
# store-buffering pair: the scans' Counter fetch_add + scan-side
# update-word loads, and the updaters' publish CAS + handshake re-read.
# Every such site is tagged `sc-ok:` with its justifying invariant.
#
# This gate fails the build when:
#   1. a mutex sneaks back into the vendored epoch collector, or
#   2. an untagged `SeqCst` appears in the tree crates (new sites must
#      be argued for and tagged — and should almost always be
#      Acquire/Release instead), or
#   3. the number of whitelisted sites drifts from the audited count
#      (so silently *adding* a tagged site also needs a review).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. Lock-free collector stays lock-free (PR 3 invariant). ---------
if grep -rnE 'Mutex|RwLock' vendor/crossbeam-epoch/src --include='*.rs' \
    | grep -vE '^\S+:[0-9]+:\s*(//|//!|///)' | grep -q .; then
    echo "FAIL: mutex primitive found in vendor/crossbeam-epoch:"
    grep -rnE 'Mutex|RwLock' vendor/crossbeam-epoch/src --include='*.rs' \
        | grep -vE '^\S+:[0-9]+:\s*(//|//!|///)'
    fail=1
fi

# --- 2. Every SeqCst code line in the tree crates is sc-ok-tagged. ----
# Comment-only lines and `use` imports of the Ordering name are allowed;
# any other line containing SeqCst must carry the `sc-ok:` tag.
untagged=$(grep -rn 'SeqCst' crates/core/src crates/nbbst/src --include='*.rs' \
    | grep -vE '^\S+:[0-9]+:\s*(//|//!|///)' \
    | grep -vE '^\S+:[0-9]+:\s*use ' \
    | grep -v 'sc-ok:' || true)
if [ -n "$untagged" ]; then
    echo "FAIL: untagged SeqCst site(s) outside the handshake whitelist:"
    echo "$untagged"
    echo "(use Acquire/Release/Relaxed, or tag the line 'sc-ok: <invariant>')"
    fail=1
fi

# --- 3. The whitelist itself is pinned. -------------------------------
# 7 audited sites: publish CAS + handshake re-read (help.rs), scan-side
# update-word load (node.rs), phase-closing fetch_add ×4 (scan.rs ×2,
# iter.rs, snapshot.rs).
expected=7
actual=$(grep -rn 'SeqCst' crates/core/src crates/nbbst/src --include='*.rs' \
    | grep -vE '^\S+:[0-9]+:\s*(//|//!|///)' \
    | grep -vE '^\S+:[0-9]+:\s*use ' \
    | grep -c 'sc-ok:' || true)
if [ "$actual" -ne "$expected" ]; then
    echo "FAIL: expected $expected sc-ok SeqCst sites, found $actual."
    echo "If the protocol genuinely changed, update 'expected' here AND the"
    echo "site table in DESIGN.md §3.5."
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "ordering gate OK: collector lock-free, $actual/$expected SeqCst sites whitelisted"
fi
exit "$fail"
