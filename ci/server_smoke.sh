#!/usr/bin/env bash
# CI server-smoke gate: boot a real pnb-server on an ephemeral loopback
# port, drive it with pnb-load through the open-loop engine for ~2s,
# assert the emitted JSON carries the e11/e14-schema latency columns and
# the interval log has rows, then SIGTERM the server and require a clean
# graceful-drain exit. Everything a PR could break on the wire path —
# codec, worker loop, session refresh, NetMap adapter, drain — has to
# work for this to pass.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building pnb-server + pnb-load (release) =="
cargo build --release --locked -p pnb-server --bins

echo "== starting pnb-server on an ephemeral port =="
addr_file="$workdir/addr"
./target/release/pnb-server --addr 127.0.0.1:0 --shards 8 --workers 2 \
    --addr-file "$addr_file" >"$workdir/server.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
    [[ -s "$addr_file" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "server died before binding:" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$addr_file" ]] || { echo "server never wrote --addr-file" >&2; exit 1; }
addr=$(cat "$addr_file")
echo "   bound at $addr"

echo "== driving it with pnb-load (open-loop, 2s, range mix) =="
./target/release/pnb-load --addr "$addr" --threads 2 --rate 2000 \
    --duration-ms 2000 --keys 8192 --mix range \
    --json "$workdir/load.json" --interval-log "$workdir/intervals.jsonl"

echo "== gating the JSON schema =="
test -s "$workdir/load.json"
grep -q '"structure": "pnb-sharded-net"' "$workdir/load.json"
grep -q '"offered_rate"' "$workdir/load.json"
grep -q '"achieved_rate"' "$workdir/load.json"
grep -q '"p50_ns"' "$workdir/load.json"
grep -q '"p99_ns"' "$workdir/load.json"
grep -q '"p999_ns"' "$workdir/load.json"
# The range mix must have exercised scans through the socket.
grep -q '"op": "range_scan"' "$workdir/load.json"
# The interval log must have at least one per-second row with the
# per-interval columns.
test -s "$workdir/intervals.jsonl"
grep -q '"t_secs"' "$workdir/intervals.jsonl"
grep -q '"achieved_rate"' "$workdir/intervals.jsonl"
grep -q '"p50_ns"' "$workdir/intervals.jsonl"
grep -q '"p99_ns"' "$workdir/intervals.jsonl"

echo "== graceful drain on SIGTERM =="
kill -TERM "$server_pid"
drained=1
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        drained=0
        break
    fi
    sleep 0.1
done
if [[ "$drained" -ne 0 ]]; then
    echo "server did not exit within 10s of SIGTERM" >&2
    cat "$workdir/server.log" >&2
    exit 1
fi
wait "$server_pid" 2>/dev/null || {
    echo "server exited non-zero after SIGTERM:" >&2
    cat "$workdir/server.log" >&2
    exit 1
}
server_pid=""
grep -q "drained, bye" "$workdir/server.log"

echo "server-smoke: OK"
