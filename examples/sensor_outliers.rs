//! Distance-based outlier detection over a live sensor index — the
//! paper cites range queries for exactly this workload (Knorr, Ng &
//! Tucakov, "Distance-based outliers", VLDB J. 2000).
//!
//! A reading `v` is a DB(ε, π)-outlier if fewer than `π` of the indexed
//! readings fall within `[v - ε, v + ε]`. With a PNB-BST keyed by
//! reading value, that neighbourhood count is a single wait-free range
//! query — even while sensor threads keep inserting and an evictor
//! deletes expired readings.
//!
//! ```sh
//! cargo run --release --example sensor_outliers
//! ```

use pnbbst_repro::PnbBst;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Index keyed by scaled sensor value; payload = sensor id.
type ValueIndex = PnbBst<u64, u32>;

const EPS: u64 = 40; // neighbourhood half-width ε
const PI: usize = 3; // density threshold π
const CENTER: u64 = 5_000;

fn main() {
    let index: Arc<ValueIndex> = Arc::new(PnbBst::new());
    let stop = Arc::new(AtomicBool::new(false));

    // --- Sensors: cluster tightly around CENTER with occasional spikes.
    let sensors: Vec<_> = (0..2u32)
        .map(|id| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                // One pinned session per sensor thread: ingest is the
                // hot path, so the epoch guard is amortized.
                let mut session = index.pin();
                let mut x = 0xC0FFEEu64.wrapping_add(id as u64);
                let mut produced = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let noise = (x >> 33) % 200;
                    // 1-in-64 readings is a wild spike (a real outlier).
                    let value = if (x >> 20).is_multiple_of(64) {
                        CENTER + 2_000 + (x >> 40) % 1_000
                    } else {
                        CENTER + noise
                    };
                    // Perturb equal values so distinct readings coexist
                    // (set semantics).
                    let key = value * 16 + (x % 16);
                    session.insert(key, id);
                    produced += 1;
                    if produced.is_multiple_of(64) {
                        session.refresh();
                    }
                }
                produced
            })
        })
        .collect();

    // --- Evictor: keeps the index from growing without bound by
    // deleting random old readings (delete path under churn).
    let evictor = {
        let index = Arc::clone(&index);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut evicted = 0u64;
            let mut session = index.pin();
            while !stop.load(Ordering::Relaxed) {
                if session.len() > 4_000 {
                    // Lazily walk a band and delete every other key —
                    // no victim list is ever materialized: the Range
                    // iterator reads a closed phase, so deleting through
                    // the same session mid-iteration is safe.
                    let mut parity = false;
                    for (k, _) in session.range(0..=CENTER * 16) {
                        parity = !parity;
                        if parity && session.delete(&k) {
                            evicted += 1;
                        }
                    }
                    session.refresh();
                } else {
                    thread::sleep(Duration::from_millis(5));
                }
            }
            evicted
        })
    };

    // --- Detector: classify fresh readings by neighbourhood density.
    let detector = {
        let index = Arc::clone(&index);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut outliers = 0u64;
            let mut inliers = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Take a snapshot so candidate selection and the density
                // queries see one consistent world.
                let snap = index.snapshot();
                // Lazy candidate sampling: `take(16)` touches O(depth +
                // 16) nodes, not the whole spike band.
                let sample: Vec<u64> = snap
                    .range((CENTER + 1_500) * 16..=u64::MAX / 2)
                    .take(16)
                    .map(|(k, _)| k)
                    .collect();
                for key in sample {
                    let lo = key.saturating_sub(EPS * 16);
                    let hi = key.saturating_add(EPS * 16);
                    let density = snap.range(lo..=hi).count();
                    if density < PI {
                        outliers += 1;
                    } else {
                        inliers += 1;
                    }
                }
                drop(snap);
                thread::sleep(Duration::from_millis(10));
            }
            (outliers, inliers)
        })
    };

    thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);

    let produced: u64 = sensors.into_iter().map(|h| h.join().unwrap()).sum();
    let evicted = evictor.join().unwrap();
    let (outliers, inliers) = detector.join().unwrap();

    println!("readings produced: {produced}, evicted: {evicted}");
    println!("spike classifications: {outliers} outliers, {inliers} dense");
    println!("index size at shutdown: {}", index.len());
    // Sanity: the cluster around CENTER must be dense.
    let cluster = index.scan_count(&(CENTER * 16), &((CENTER + 200) * 16));
    println!("cluster density near center: {cluster}");
    println!("sensor_outliers OK");
}
