//! Quickstart: the full public API of the PNB-BST in two minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pnbbst_repro::PnbBst;
use std::ops::Bound;
use std::sync::Arc;
use std::thread;

fn main() {
    // A concurrent ordered map: keys are totally ordered, inserts keep
    // the paper's set semantics (no replacement).
    let tree: Arc<PnbBst<u64, String>> = Arc::new(PnbBst::new());

    // --- Single-threaded basics -------------------------------------
    assert!(tree.insert(20, "twenty".into()));
    assert!(tree.insert(10, "ten".into()));
    assert!(tree.insert(30, "thirty".into()));
    assert!(!tree.insert(20, "again".into())); // duplicate: rejected

    assert_eq!(tree.get(&10).as_deref(), Some("ten"));
    assert!(tree.contains(&30));
    assert_eq!(tree.remove(&30).as_deref(), Some("thirty"));
    assert_eq!(tree.get(&30), None);

    // Wait-free, linearizable range queries (ascending order):
    tree.insert(15, "fifteen".into());
    tree.insert(25, "twenty-five".into());
    let range: Vec<u64> = tree
        .range_scan(&10, &20)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(range, vec![10, 15, 20]);

    // Visitor form with arbitrary bounds — no allocation per element:
    let mut count = 0;
    tree.range_scan_with(Bound::Excluded(&10), Bound::Unbounded, |_, _| count += 1);
    assert_eq!(count, 3); // 15, 20, 25

    // --- Point-in-time snapshots ------------------------------------
    let snap = tree.snapshot();
    tree.insert(99, "late".into());
    assert_eq!(snap.get(&99), None); // the snapshot predates 99
    assert_eq!(tree.get(&99).as_deref(), Some("late"));
    println!("snapshot of phase {} holds {} keys", snap.seq(), snap.len());
    drop(snap);

    // --- Concurrency ------------------------------------------------
    // Writers on disjoint stripes + a scanner, all lock-free/wait-free.
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                for i in 0..1_000 {
                    tree.insert(1_000 * (w + 1) + i, format!("w{w}-{i}"));
                }
            })
        })
        .collect();

    // Scans are safe (and wait-free) at any point during the writes.
    let mid_flight = tree.scan_count(&1_000, &5_999);
    println!("keys visible to a mid-flight scan: {mid_flight}");

    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(tree.scan_count(&1_000, &5_999), 4_000);
    println!(
        "final size: {} keys across phases 0..{}",
        tree.len(),
        tree.phase()
    );
    println!("quickstart OK");
}
