//! Quickstart: the full public API of the PNB-BST in two minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pnbbst_repro::PnbBst;
use std::ops::Bound;
use std::sync::Arc;
use std::thread;

fn main() {
    // A concurrent ordered map: keys are totally ordered, inserts keep
    // the paper's set semantics (no replacement).
    let tree: Arc<PnbBst<u64, String>> = Arc::new(PnbBst::new());

    // --- Sessions: the hot-path API ---------------------------------
    // `pin()` takes one epoch guard for any number of operations (the
    // per-call methods further down pin per call — fine for occasional
    // use, wasteful in loops).
    let h = tree.pin();
    assert!(h.insert(20, "twenty".into()));
    assert!(h.insert(10, "ten".into()));
    assert!(h.insert(30, "thirty".into()));
    assert!(!h.insert(20, "again".into())); // duplicate: rejected

    // Atomic insert-or-replace returns the displaced value:
    assert_eq!(h.upsert(20, "TWENTY".into()).as_deref(), Some("twenty"));
    assert_eq!(h.upsert(40, "forty".into()), None); // was absent

    assert_eq!(h.get(&10).as_deref(), Some("ten"));
    assert!(h.contains(&30));
    assert_eq!(h.remove(&30).as_deref(), Some("thirty"));
    assert_eq!(h.get(&30), None);
    assert_eq!(h.remove(&40).as_deref(), Some("forty"));

    // Wait-free, lazy range iteration over any RangeBounds — nothing is
    // materialized; each `next()` walks the immutable version tree:
    h.insert(15, "fifteen".into());
    h.insert(25, "twenty-five".into());
    let range: Vec<u64> = h.range(10..=20).map(|(k, _)| k).collect();
    assert_eq!(range, vec![10, 15, 20]);
    assert_eq!(h.range(11..).count(), 3); // 15, 20, 25
    assert_eq!(h.iter().next().map(|(k, _)| k), Some(10)); // lazy: O(depth)
    drop(h);

    // --- Per-call compat API ----------------------------------------
    // The paper-literal methods still exist (each pins internally):
    assert_eq!(tree.get(&10).as_deref(), Some("ten"));
    let range: Vec<u64> = tree
        .range_scan(&10, &20)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(range, vec![10, 15, 20]);

    // Visitor form with arbitrary bounds — no allocation per element:
    let mut count = 0;
    tree.range_scan_with(Bound::Excluded(&10), Bound::Unbounded, |_, _| count += 1);
    assert_eq!(count, 3); // 15, 20, 25

    // --- Point-in-time snapshots ------------------------------------
    let snap = tree.snapshot();
    tree.insert(99, "late".into());
    assert_eq!(snap.get(&99), None); // the snapshot predates 99
    assert_eq!(tree.get(&99).as_deref(), Some("late"));
    // Snapshots iterate lazily too, over their frozen version:
    let frozen_keys: Vec<u64> = snap.range(..).map(|(k, _)| k).collect();
    assert_eq!(frozen_keys, vec![10, 15, 20, 25]);
    println!("snapshot of phase {} holds {} keys", snap.seq(), snap.len());
    drop(snap);

    // --- Concurrency ------------------------------------------------
    // Writers on disjoint stripes + a scanner, all lock-free/wait-free.
    // Each writer pins one session for its whole stripe and refreshes
    // periodically so memory reclamation keeps up.
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                let mut session = tree.pin();
                for i in 0..1_000 {
                    session.insert(1_000 * (w + 1) + i, format!("w{w}-{i}"));
                    if (i + 1).is_multiple_of(64) {
                        session.refresh();
                    }
                }
            })
        })
        .collect();

    // Scans are safe (and wait-free) at any point during the writes.
    let mid_flight = tree.scan_count(&1_000, &5_999);
    println!("keys visible to a mid-flight scan: {mid_flight}");

    for w in writers {
        w.join().unwrap();
    }
    let h = tree.pin();
    assert_eq!(h.scan_count(&1_000, &5_999), 4_000);
    println!(
        "final size: {} keys across phases 0..{}",
        h.len(),
        h.phase()
    );
    println!("quickstart OK");
}
