//! Analytics over a live index — the paper's motivating big-data
//! scenario (§1: "shared in-memory tree-based data indices must be
//! created for fast data retrieval and useful data analytics").
//!
//! Ingest threads continuously index "orders" keyed by timestamp while
//! dashboard threads concurrently compute per-window aggregates with
//! wait-free range queries. Every aggregate is computed from one
//! linearizable scan, so the dashboard never shows a torn window — and
//! the scans never block ingest.
//!
//! ```sh
//! cargo run --release --example analytics_dashboard
//! ```

use pnbbst_repro::PnbBst;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// An indexed order: key = logical timestamp, value = cents.
type OrderIndex = PnbBst<u64, u64>;

const INGEST_THREADS: u64 = 2;
const WINDOW: u64 = 1_000; // dashboard window width (logical time)
const RUN_MS: u64 = 800;

fn main() {
    let index: Arc<OrderIndex> = Arc::new(PnbBst::new());
    let clock = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // --- Ingest: each thread appends orders at interleaved timestamps.
    let ingest: Vec<_> = (0..INGEST_THREADS)
        .map(|t| {
            let index = Arc::clone(&index);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                // Ingest is the hot path: one pinned session, refreshed
                // every batch, instead of a guard pin per order.
                let mut session = index.pin();
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ts = clock.fetch_add(1, Ordering::Relaxed);
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let cents = 100 + (x >> 33) % 10_000;
                    session.insert(ts, cents);
                    n += 1;
                    if n.is_multiple_of(64) {
                        session.refresh();
                    }
                }
                n
            })
        })
        .collect();

    // --- Dashboard: sliding-window aggregates via wait-free scans.
    let dashboard = {
        let index = Arc::clone(&index);
        let clock = Arc::clone(&clock);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut reports = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let now = clock.load(Ordering::Relaxed);
                let lo = now.saturating_sub(WINDOW);
                // One linearizable, wait-free lazy scan per report —
                // the aggregate folds the iterator without ever
                // materializing the window.
                let session = index.pin();
                let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
                for (_, cents) in session.range(lo..=now) {
                    count += 1;
                    sum += cents;
                    max = max.max(cents);
                }
                drop(session);
                if count > 0 && reports.is_multiple_of(50) {
                    println!(
                        "[dashboard] window [{lo}, {now}]: {count} orders, avg {:.2}¢, max {max}¢",
                        sum as f64 / count as f64
                    );
                }
                reports += 1;
            }
            reports
        })
    };

    // --- Compliance: periodic full snapshots for point-in-time audit.
    let audit = {
        let index = Arc::clone(&index);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut audits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = index.snapshot();
                // Everything read from `snap` is mutually consistent,
                // however long the audit takes.
                let total = snap.len();
                let first = snap.to_vec().first().map(|(k, _)| *k);
                if audits.is_multiple_of(10) {
                    println!(
                        "[audit] snapshot@phase {}: {total} orders, oldest ts {first:?}",
                        snap.seq()
                    );
                }
                audits += 1;
                drop(snap);
                thread::sleep(Duration::from_millis(20));
            }
            audits
        })
    };

    thread::sleep(Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);

    let ingested: u64 = ingest.into_iter().map(|h| h.join().unwrap()).sum();
    let reports = dashboard.join().unwrap();
    let audits = audit.join().unwrap();

    let final_size = index.len();
    println!("---");
    println!("ingested {ingested} orders, indexed size {final_size}");
    println!("dashboard produced {reports} aggregate reports (wait-free scans)");
    println!("audit took {audits} full snapshots");
    assert_eq!(
        final_size as u64, ingested,
        "every ingested order is indexed"
    );
    println!("analytics_dashboard OK");
}
