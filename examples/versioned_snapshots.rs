//! Persistence as a feature: time-travel reads over a mutating map.
//!
//! The paper's structure is *persistent* — "old versions of the data
//! structure are preserved when it is modified, so that one can access
//! any old version" (§1). This example uses [`PnbBst::snapshot`] to keep
//! several historical versions alive simultaneously and compares them:
//! the core of an MVCC-style read path, built from nothing but the
//! paper's `prev`-pointer versioning.
//!
//! ```sh
//! cargo run --release --example versioned_snapshots
//! ```

use pnbbst_repro::PnbBst;
use std::sync::Arc;
use std::thread;

fn main() {
    let accounts: Arc<PnbBst<u32, i64>> = Arc::new(PnbBst::new());

    // Epoch 0: initial balances.
    for id in 0..8u32 {
        accounts.insert(id, 100);
    }
    let v0 = accounts.snapshot();

    // Epoch 1: a batch of concurrent transfers (disjoint pairs).
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let accounts = Arc::clone(&accounts);
            thread::spawn(move || {
                let from = i * 2;
                let to = i * 2 + 1;
                // Move 30 units from `from` to `to`: one pinned session,
                // atomic per-account `upsert`s (the pre-handle API had to
                // delete + reinsert, leaving a window with the account
                // missing entirely).
                let h = accounts.pin();
                let a = h.get(&from).unwrap();
                let b = h.get(&to).unwrap();
                assert_eq!(h.upsert(from, a - 30), Some(a));
                assert_eq!(h.upsert(to, b + 30), Some(b));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let v1 = accounts.snapshot();

    // Epoch 2: close the odd accounts.
    for id in (1..8u32).step_by(2) {
        accounts.delete(&id);
    }
    let v2 = accounts.snapshot();

    // --- All three versions are readable, concurrently and consistently.
    println!("version | phase | accounts | total balance");
    for (label, snap) in [("v0", &v0), ("v1", &v1), ("v2", &v2)] {
        let total: i64 = snap.to_vec().iter().map(|(_, b)| b).sum();
        println!(
            "  {label}    |  {:>3}  |    {:>2}    | {total}",
            snap.seq(),
            snap.len()
        );
    }

    // Conservation of money within each full version:
    let sum0: i64 = v0.to_vec().iter().map(|(_, b)| b).sum();
    let sum1: i64 = v1.to_vec().iter().map(|(_, b)| b).sum();
    assert_eq!(sum0, 800, "initial balances");
    assert_eq!(sum1, 800, "transfers conserve the total");
    assert_eq!(v0.get(&1), Some(100), "v0 predates the transfer");
    assert_eq!(v1.get(&1), Some(130), "v1 sees the transfer");
    assert_eq!(v2.get(&1), None, "v2 saw account 1 closed");
    assert_eq!(v2.len(), 4);

    // Diff two versions lazily: walk v1's ordered iterator and probe v2.
    let closed: Vec<u32> = v1
        .iter()
        .map(|(k, _)| k)
        .filter(|k| v2.get(k).is_none())
        .collect();
    println!("accounts closed between v1 and v2: {closed:?}");
    assert_eq!(closed, vec![1, 3, 5, 7]);

    println!("versioned_snapshots OK");
}
