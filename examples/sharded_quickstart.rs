//! Sharded quickstart: partition the key space over independent
//! PNB-BSTs and read it back as one map.
//!
//! ```sh
//! cargo run --release --example sharded_quickstart
//! ```
//!
//! Shows: construction + routing, per-thread sharded sessions, merged
//! cross-shard range queries, cross-shard snapshots, and the
//! prefix-consistency idiom for multi-shard updates ("commit record
//! last": write the highest shard last, then its presence in any
//! snapshot implies every earlier piece is present too).

use pnbbst_repro::{RangePrefixPartitioner, ShardedPnbBst};
use std::sync::Arc;
use std::thread;

fn main() {
    // --- Construction and routing -----------------------------------
    // 8 independent PNB-BSTs behind one map. The default partitioner
    // hashes the key's 4096-key block, so narrow ranges stay
    // shard-local while blocks spread uniformly.
    let map: Arc<ShardedPnbBst<u64, u64>> = Arc::new(ShardedPnbBst::new(8));
    println!(
        "8 shards; key 0 routes to shard {}, key 1_000_000 to shard {}",
        map.shard_of(&0),
        map.shard_of(&1_000_000)
    );

    // --- Sessions: the hot-path API ---------------------------------
    // One session pins every shard once; point ops route to exactly
    // one shard's tree and inherit its lock-free guarantees.
    let s = map.pin();
    for k in 0..50u64 {
        s.insert(k * 10_000, k); // spread over many blocks → many shards
    }
    assert_eq!(s.get(&70_000), Some(7));
    assert_eq!(s.upsert(70_000, 777), Some(7)); // atomic, per-shard
    assert!(s.delete(&480_000));

    // Cross-shard lazy range: one phase close per participating shard
    // (descending shard order — the consistency discipline), merged
    // ascending. Narrow ranges skip shards entirely.
    let narrow = s.range(60_000u64..=62_000);
    println!("narrow range touches {} of 8 shards", narrow.width());
    assert!(narrow.width() <= 2); // spans at most two 4096-key blocks
    let keys: Vec<u64> = s.range(100_000u64..200_000).map(|(k, _)| k).collect();
    assert_eq!(keys, (10..20u64).map(|k| k * 10_000).collect::<Vec<_>>());
    assert_eq!(s.len(), 49);
    drop(s);

    // --- Cross-shard snapshots --------------------------------------
    let snap = map.snapshot();
    map.insert(999_999, 42);
    assert_eq!(snap.len(), 49); // frozen: the late key is invisible
    assert_eq!(map.len(), 50);
    println!(
        "snapshot froze {} keys across per-shard phases {:?}",
        snap.len(),
        snap.seqs()
    );
    drop(snap);

    // --- The prefix-consistency idiom -------------------------------
    // A writer updating shards in ASCENDING order is seen prefix-closed
    // by every cross-shard read (which captures shards in DESCENDING
    // order): if a snapshot shows the write to shard i, it shows every
    // write to shards j < i of the same "transaction". Writing a
    // commit record into the HIGHEST shard last therefore publishes
    // the whole transaction atomically-in-effect.
    let mut by_shard: Vec<Option<u64>> = vec![None; 8];
    let mut found = 0;
    for block in 0..100_000u64 {
        let k = block * 4_096;
        let sh = map.shard_of(&k);
        if by_shard[sh].is_none() {
            by_shard[sh] = Some(k);
            found += 1;
            if found == 8 {
                break;
            }
        }
    }
    let txn_keys: Vec<u64> = by_shard.into_iter().map(Option::unwrap).collect();

    let writer = {
        let map = Arc::clone(&map);
        let txn_keys = txn_keys.clone();
        thread::spawn(move || {
            let mut session = map.pin();
            for version in 1..=500u64 {
                for &k in &txn_keys {
                    // ascending shard order
                    session.upsert(k, version);
                }
                if version.is_multiple_of(64) {
                    session.refresh();
                }
            }
        })
    };

    // Concurrent snapshots may catch a transaction half-done, but only
    // ever as a prefix: versions along shard order never increase.
    let mut checked = 0u32;
    for _ in 0..200 {
        let snap = map.snapshot();
        let versions: Vec<u64> = txn_keys.iter().map(|k| snap.get(k).unwrap_or(0)).collect();
        for w in versions.windows(2) {
            assert!(w[0] >= w[1], "torn cross-shard view: {versions:?}");
        }
        checked += 1;
    }
    writer.join().unwrap();
    println!("{checked} concurrent snapshots, every one a consistent prefix cut");

    // --- Custom partitioners ----------------------------------------
    // The routing policy is pluggable; here, coarser 64Ki-key blocks
    // keep even wide ranges on one shard.
    let coarse: ShardedPnbBst<u64, u64, RangePrefixPartitioner> =
        ShardedPnbBst::with_partitioner(4, RangePrefixPartitioner::with_block_bits(16));
    let s = coarse.pin();
    for k in 0..1_000u64 {
        s.insert(k, k);
    }
    let r = s.range(0u64..1_000);
    assert_eq!(r.width(), 1); // whole range inside one block → one shard
    assert_eq!(r.count(), 1_000);
    println!(
        "coarse partitioner: block size {} keys, range width 1 shard",
        coarse.partitioner().block_size()
    );

    println!("sharded_quickstart OK");
}
